"""The ``repro telemetry`` subcommand and its smoke scenario."""

import json

from repro.cli import build_parser, main
from repro.telemetry.scenario import run_smoke_scenario


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["telemetry"])
        assert args.scenario == "smoke"
        assert args.require_all is False

    def test_unknown_scenario_rejected(self):
        import pytest
        with pytest.raises(SystemExit):
            build_parser().parse_args(["telemetry", "--scenario", "nope"])


class TestSmokeScenario:
    def test_every_registered_metric_fires(self):
        system = run_smoke_scenario(seconds=40.0)
        assert system.telemetry.unobserved() == []

    def test_all_five_subsystems_covered(self):
        system = run_smoke_scenario(seconds=40.0)
        names = {inst.name for inst in system.telemetry.instruments()}
        for prefix in ("repro_tangle_", "repro_pow_", "repro_network_",
                       "repro_keydist_", "repro_credit_"):
            assert any(n.startswith(prefix) for n in names), prefix


class TestCommand:
    def test_writes_artifacts_and_passes_require_all(self, tmp_path, capsys):
        out_dir = tmp_path / "telemetry"
        code = main(["telemetry", "--scenario", "smoke",
                     "--out-dir", str(out_dir), "--require-all"])
        assert code == 0

        out = capsys.readouterr().out
        assert "repro_pow_solves_total" in out

        prom = (out_dir / "metrics.prom").read_text()
        assert "# TYPE repro_tangle_attach_total counter" in prom
        assert "repro_pow_solve_seconds_bucket" in prom

        lines = (out_dir / "telemetry.jsonl").read_text().splitlines()
        rows = [json.loads(line) for line in lines]
        assert any(r["type"] == "span" for r in rows)
        assert any(r["type"] == "metric" for r in rows)
        assert [r["t"] for r in rows] == sorted(r["t"] for r in rows)
