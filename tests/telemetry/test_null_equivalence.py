"""Disabled telemetry must be invisible: identical simulation results.

Instrumentation sits on consensus-relevant hot paths (attach, PoW,
credit evaluation), so the null path has to be *behaviourally* inert,
not just cheap: the same seed must produce the same ledger with
telemetry on, off, or defaulted.
"""

from repro.core.biot import BIoTConfig, BIoTSystem


def _run(telemetry: bool):
    # Non-sensitive sensors only: the AES layer draws fresh IVs from
    # os.urandom, which perturbs PoW challenges run to run and would
    # mask (or fake) a telemetry-induced divergence.  Without it the
    # whole simulation is bit-deterministic per seed.
    system = BIoTSystem.build(BIoTConfig(
        device_count=2, gateway_count=1, seed=11,
        initial_difficulty=6, telemetry=telemetry,
        sensor_cycle=("temperature", "vibration"),
    ))
    system.initialize()
    system.start_devices()
    system.run_for(20.0)
    return system


class TestNullEquivalence:
    def test_summary_identical_modulo_metrics_section(self):
        disabled = _run(telemetry=False).summary()
        enabled = _run(telemetry=True).summary()
        assert "metrics" not in disabled
        metrics = enabled.pop("metrics")
        assert enabled == disabled
        assert metrics  # the enabled run did collect something

    def test_ledgers_identical(self):
        disabled = _run(telemetry=False)
        enabled = _run(telemetry=True)
        hashes_off = [tx.tx_hash for tx in disabled.manager.tangle]
        hashes_on = [tx.tx_hash for tx in enabled.manager.tangle]
        assert hashes_off == hashes_on

    def test_disabled_system_uses_shared_null_objects(self):
        system = _run(telemetry=False)
        assert not system.telemetry.enabled
        assert not system.tracer.enabled
        assert system.telemetry.snapshot() == {}
        assert system.tracer.finished() == []
