"""Disabled telemetry must be invisible: identical simulation results.

Instrumentation sits on consensus-relevant hot paths (attach, PoW,
credit evaluation), so the null path has to be *behaviourally* inert,
not just cheap: the same seed must produce the same ledger with
telemetry on, off, or defaulted.
"""

from repro.core.biot import BIoTConfig, BIoTSystem


def _run(telemetry: bool):
    # Non-sensitive sensors only: the AES layer draws fresh IVs from
    # os.urandom, which perturbs PoW challenges run to run and would
    # mask (or fake) a telemetry-induced divergence.  Without it the
    # whole simulation is bit-deterministic per seed.
    system = BIoTSystem.build(BIoTConfig(
        device_count=2, gateway_count=1, seed=11,
        initial_difficulty=6, telemetry=telemetry,
        sensor_cycle=("temperature", "vibration"),
    ))
    system.initialize()
    system.start_devices()
    system.run_for(20.0)
    return system


class TestNullEquivalence:
    def test_summary_identical_modulo_metrics_section(self):
        disabled = _run(telemetry=False).summary()
        enabled = _run(telemetry=True).summary()
        assert "metrics" not in disabled
        metrics = enabled.pop("metrics")
        assert enabled == disabled
        assert metrics  # the enabled run did collect something

    def test_ledgers_identical(self):
        disabled = _run(telemetry=False)
        enabled = _run(telemetry=True)
        hashes_off = [tx.tx_hash for tx in disabled.manager.tangle]
        hashes_on = [tx.tx_hash for tx in enabled.manager.tangle]
        assert hashes_off == hashes_on

    def test_disabled_system_uses_shared_null_objects(self):
        system = _run(telemetry=False)
        assert not system.telemetry.enabled
        assert not system.tracer.enabled
        assert system.telemetry.snapshot() == {}
        assert system.tracer.finished() == []

    def test_disabled_lifecycle_and_scheduler_are_null(self):
        """The causal layer must vanish completely when telemetry is
        off: null lifecycle on every node, no trace binder on the
        scheduler, no trace contexts on delivered messages."""
        system = _run(telemetry=False)
        assert not system.lifecycle.enabled
        assert system.lifecycle.timelines() == []
        assert system.scheduler.trace_binder is None
        for node in system.full_nodes:
            assert node.lifecycle is system.lifecycle
        for device in system.devices:
            assert device.lifecycle is system.lifecycle

    def test_lifecycle_sampling_rate_does_not_change_ledger(self):
        """Tracing every transaction vs every third one must not move
        a single event: the causal layer only observes."""
        def run(sample_every):
            config = BIoTConfig(
                device_count=2, gateway_count=1, seed=11,
                initial_difficulty=6, telemetry=True,
                sensor_cycle=("temperature", "vibration"),
                trace_sample_every=sample_every,
            )
            system = BIoTSystem.build(config)
            system.initialize()
            system.start_devices()
            system.run_for(20.0)
            return system

        dense = run(1)
        sparse = run(3)
        assert ([tx.tx_hash for tx in dense.manager.tangle]
                == [tx.tx_hash for tx in sparse.manager.tangle])
        assert len(dense.lifecycle.timelines()) > len(
            sparse.lifecycle.timelines())
