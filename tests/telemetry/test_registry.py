"""Registry semantics: instruments, labels, events, the null path."""

import pytest

from repro.telemetry.registry import (
    COUNT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    QUANTILES,
    bucket_quantile,
    coerce_registry,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def now(self):
        return self.t


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("repro_test_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        assert counter.total == 3.5

    def test_labels_are_independent_series(self):
        counter = MetricsRegistry().counter("repro_test_total")
        counter.inc(node="a")
        counter.inc(node="a")
        counter.inc(node="b")
        assert counter.value(node="a") == 2
        assert counter.value(node="b") == 1
        assert counter.value(node="c") == 0
        assert counter.total == 3

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total", "help")
        second = registry.counter("repro_test_total")
        assert first is second

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_test_total")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("Repro-Bad Name")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_test_depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 13


class TestHistogram:
    def test_bucket_edges_are_upper_bounds(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_sizes", buckets=(1, 10, 100))
        for value in (0.5, 1, 2, 10, 99, 1000):
            histogram.observe(value)
        merged = histogram.merged()
        # le=1: {0.5, 1}; le=10: {2, 10}; le=100: {99}; +Inf: {1000}
        assert merged.bucket_counts == [2, 2, 1, 1]
        assert merged.count == 6
        assert merged.minimum == 0.5
        assert merged.maximum == 1000

    def test_snapshot_per_label_set(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_sizes", buckets=COUNT_BUCKETS)
        histogram.observe(3, node="a")
        histogram.observe(5, node="b")
        assert histogram.snapshot(node="a").count == 1
        assert histogram.snapshot(node="c") is None
        assert histogram.merged().count == 2

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_test_sizes", buckets=(5, 1))


class TestQuantiles:
    """Bucket-interpolated quantile estimation (golden values)."""

    def _uniform_histogram(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(10, 20, 30, 40))
        for value in range(1, 41):  # 1..40, 10 per bucket
            histogram.observe(value)
        return histogram

    def test_uniform_spread_golden_values(self):
        histogram = self._uniform_histogram()
        # 40 uniform observations over 4 equal buckets: the estimate
        # interpolates linearly, anchored at the series minimum.
        assert histogram.quantile(0.25) == pytest.approx(10.0)
        assert histogram.quantile(0.5) == pytest.approx(20.0)
        assert histogram.quantile(0.75) == pytest.approx(30.0)
        assert histogram.quantile(1.0) == pytest.approx(40.0)

    def test_first_bucket_anchored_at_minimum(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(10,))
        histogram.observe(4.0)
        histogram.observe(8.0)
        # Both in the first bucket: lo = min = 4, hi = edge = 10.
        assert histogram.quantile(0.5) == pytest.approx(7.0)

    def test_overflow_bucket_capped_at_maximum(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(1,))
        histogram.observe(0.5)
        histogram.observe(100.0)
        # Targets in the +Inf bucket interpolate between its lower
        # edge and the observed maximum, never beyond it.
        assert histogram.quantile(0.99) == pytest.approx(98.02)
        assert histogram.quantile(1.0) == pytest.approx(100.0)

    def test_empty_histogram_returns_none(self):
        histogram = MetricsRegistry().histogram("repro_test_seconds")
        assert histogram.quantile(0.5) is None
        assert histogram.quantiles() == {q: None for q in QUANTILES}

    def test_quantiles_batch_matches_singles(self):
        histogram = self._uniform_histogram()
        batch = histogram.quantiles()
        assert set(batch) == set(QUANTILES)
        for q, value in batch.items():
            assert value == histogram.quantile(q)

    def test_labelled_series_quantile(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(10, 20))
        histogram.observe(5, node="a")
        histogram.observe(15, node="b")
        assert histogram.quantile(1.0, node="a") == pytest.approx(5.0)
        assert histogram.quantile(1.0, node="b") == pytest.approx(15.0)
        assert histogram.quantile(0.5, node="missing") is None

    def test_out_of_range_q_rejected(self):
        histogram = self._uniform_histogram()
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                histogram.quantile(bad)

    def test_bucket_quantile_clamps_to_observed_range(self):
        histogram = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(10, 20))
        histogram.observe(12.0)
        merged = histogram.merged()
        # A single observation: every quantile is that observation.
        for q in (0.01, 0.5, 0.99):
            assert bucket_quantile((10, 20), merged, q) == pytest.approx(12.0)

    def test_null_instrument_quantiles(self):
        histogram = NULL_REGISTRY.histogram("repro_test_seconds")
        assert histogram.quantile(0.5) is None
        assert histogram.quantiles() == {q: None for q in QUANTILES}


class TestEventLog:
    def test_events_carry_sim_time(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock)
        counter = registry.counter("repro_test_total")
        clock.t = 3.5
        counter.inc(node="a")
        (event,) = registry.events
        assert event.time == 3.5
        assert event.name == "repro_test_total"
        assert dict(event.labels) == {"node": "a"}
        assert event.value == 1.0

    def test_overflow_drops_oldest_half(self):
        registry = MetricsRegistry(max_events=10)
        counter = registry.counter("repro_test_total")
        for _ in range(11):
            counter.inc()
        assert len(registry.events) == 6  # 10 -> keep 5, append 1
        assert registry.events_dropped == 5
        assert counter.total == 11  # aggregates never drop

    def test_overflow_count_surfaces_in_exports(self):
        """Forcing the event log to overflow must show up in every
        consumer: the JSONL meta record, the Prometheus exposition,
        and the human summary footer."""
        import io
        import json

        from repro.telemetry.exporters import (
            export_jsonl,
            render_summary,
            to_prometheus_text,
        )

        registry = MetricsRegistry(max_events=4)
        counter = registry.counter("repro_test_total")
        for _ in range(5):
            counter.inc()
        assert registry.events_dropped == 2

        sink = io.StringIO()
        export_jsonl(sink, registry=registry)
        meta = json.loads(sink.getvalue().splitlines()[-1])
        assert meta["type"] == "meta"
        assert meta["events_dropped"] == 2
        assert meta["events_recorded"] == 3

        assert ("repro_telemetry_events_dropped_total 2"
                in to_prometheus_text(registry))
        assert "2 dropped" in render_summary(registry)

    def test_record_events_off_keeps_aggregates(self):
        registry = MetricsRegistry(record_events=False)
        counter = registry.counter("repro_test_total")
        counter.inc()
        assert registry.events == []
        assert counter.total == 1


class TestCoverage:
    def test_unobserved_lists_idle_instruments(self):
        registry = MetricsRegistry()
        registry.counter("repro_idle_total")
        active = registry.counter("repro_active_total")
        active.inc()
        assert registry.unobserved() == ["repro_idle_total"]

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc(2, node="a")
        registry.histogram("repro_test_sizes", buckets=(1, 2)).observe(1.5)
        snap = registry.snapshot()
        assert snap["repro_test_total"]["series"] == {"node=a": 2.0}
        assert snap["repro_test_sizes"]["count"] == 1
        assert snap["repro_test_sizes"]["mean"] == 1.5


class TestNullRegistry:
    def test_coerce(self):
        assert coerce_registry(None) is NULL_REGISTRY
        registry = MetricsRegistry()
        assert coerce_registry(registry) is registry

    def test_null_absorbs_everything(self):
        registry = NullRegistry()
        counter = registry.counter("repro_test_total")
        counter.inc(5, node="a")
        registry.gauge("repro_test_depth").set(3)
        registry.histogram("repro_test_sizes").observe(1.0)
        assert counter.value() == 0.0
        assert registry.snapshot() == {}
        assert registry.unobserved() == []
        assert registry.events == []
        assert not registry.enabled

    def test_null_and_real_share_call_surface(self):
        """Instrumented code must run identically against either
        registry: same factories, same instrument methods."""
        for registry in (MetricsRegistry(), NullRegistry()):
            counter = registry.counter("repro_test_total", "help")
            counter.inc()
            counter.inc(2, node="x")
            gauge = registry.gauge("repro_test_depth")
            gauge.set(1)
            gauge.inc()
            gauge.dec()
            registry.histogram(
                "repro_test_sizes", buckets=(1, 2)).observe(1.5, node="x")
            registry.now()
