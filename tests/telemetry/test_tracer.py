"""Span tracing: nesting, sim-time durations, scheduler interplay."""

import pytest

from repro.network.simulator import EventScheduler
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer


class TestNesting:
    def test_child_nests_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.children(outer) == [inner]

    def test_finished_order_is_end_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished()] == ["outer", "inner"][::-1]
        assert [s.name for s in tracer.finished("outer")] == ["outer"]

    def test_end_span_closes_abandoned_children(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        tracer.start_span("inner")  # never explicitly ended
        tracer.end_span(outer)
        assert tracer.open_depth == 0
        assert all(s.finished for s in tracer.finished())

    def test_ending_unopened_span_raises(self):
        tracer = Tracer()
        span = tracer.start_span("a")
        tracer.end_span(span)
        with pytest.raises(ValueError):
            tracer.end_span(span)

    def test_attributes(self):
        tracer = Tracer()
        with tracer.span("phase", devices=4) as span:
            span.set_attribute("accepted", 3)
        assert span.attributes == {"devices": 4, "accepted": 3}


class TestSimTime:
    def test_durations_are_simulated_seconds(self):
        """A span wrapped around run_until covers exactly the simulated
        interval, regardless of host execution speed."""
        scheduler = EventScheduler()
        tracer = Tracer(scheduler.clock)
        scheduler.schedule(7.5, lambda: None)
        with tracer.span("run") as span:
            scheduler.run_until(7.5)
        assert span.start == 0.0
        assert span.end == 7.5
        assert span.duration == 7.5

    def test_nested_phases_partition_the_run(self):
        scheduler = EventScheduler()
        tracer = Tracer(scheduler.clock)
        for delay in (1.0, 2.0, 3.0):
            scheduler.schedule(delay, lambda: None)
        with tracer.span("all") as all_span:
            with tracer.span("first") as first:
                scheduler.run_until(1.5)
            with tracer.span("rest") as rest:
                scheduler.run_until(3.0)
        assert first.duration == 1.5
        assert rest.start == 1.5
        assert rest.duration == 1.5
        assert all_span.duration == 3.0

    def test_open_span_duration_is_zero(self):
        tracer = Tracer()
        span = tracer.start_span("open")
        assert span.duration == 0.0
        assert not span.finished


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", key="value") as span:
            span.set_attribute("ignored", 1)
        assert NULL_TRACER.finished() == []
        assert not NullTracer.enabled
