"""Span tracing: nesting, sim-time durations, scheduler interplay,
explicit-parent (cross-node) spans and ambient trace contexts."""

import pytest

from repro.network.simulator import EventScheduler
from repro.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceContext,
    Tracer,
)


class TestNesting:
    def test_child_nests_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.children(outer) == [inner]

    def test_finished_order_is_end_order(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.finished()] == ["outer", "inner"][::-1]
        assert [s.name for s in tracer.finished("outer")] == ["outer"]

    def test_end_span_closes_abandoned_children(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        tracer.start_span("inner")  # never explicitly ended
        tracer.end_span(outer)
        assert tracer.open_depth == 0
        assert all(s.finished for s in tracer.finished())

    def test_ending_unopened_span_raises(self):
        tracer = Tracer()
        span = tracer.start_span("a")
        tracer.end_span(span)
        with pytest.raises(ValueError):
            tracer.end_span(span)

    def test_attributes(self):
        tracer = Tracer()
        with tracer.span("phase", devices=4) as span:
            span.set_attribute("accepted", 3)
        assert span.attributes == {"devices": 4, "accepted": 3}


class TestSimTime:
    def test_durations_are_simulated_seconds(self):
        """A span wrapped around run_until covers exactly the simulated
        interval, regardless of host execution speed."""
        scheduler = EventScheduler()
        tracer = Tracer(scheduler.clock)
        scheduler.schedule(7.5, lambda: None)
        with tracer.span("run") as span:
            scheduler.run_until(7.5)
        assert span.start == 0.0
        assert span.end == 7.5
        assert span.duration == 7.5

    def test_nested_phases_partition_the_run(self):
        scheduler = EventScheduler()
        tracer = Tracer(scheduler.clock)
        for delay in (1.0, 2.0, 3.0):
            scheduler.schedule(delay, lambda: None)
        with tracer.span("all") as all_span:
            with tracer.span("first") as first:
                scheduler.run_until(1.5)
            with tracer.span("rest") as rest:
                scheduler.run_until(3.0)
        assert first.duration == 1.5
        assert rest.start == 1.5
        assert rest.duration == 1.5
        assert all_span.duration == 3.0

    def test_open_span_duration_is_zero(self):
        tracer = Tracer()
        span = tracer.start_span("open")
        assert span.duration == 0.0
        assert not span.finished


class TestExplicitParent:
    """Cross-node spans: parentage by TraceContext, not lexical nesting."""

    def test_root_span_carries_trace_id(self):
        tracer = Tracer()
        root = tracer.start_root_span("tx.lifecycle",
                                      trace_id="tx:device-0:00001")
        assert root.trace_id == "tx:device-0:00001"
        assert root.parent_id is None
        context = tracer.context_of(root)
        assert context == TraceContext("tx:device-0:00001", root.span_id)
        tracer.end_span(root)

    def test_child_links_across_lexical_scopes(self):
        """A child opened from a propagated context parents correctly
        even though the root is not on the lexical stack."""
        tracer = Tracer()
        root = tracer.start_root_span("tx.lifecycle", trace_id="tx:1")
        context = tracer.context_of(root)
        with tracer.span("unrelated.driver.work"):
            child = tracer.start_child_span("tx.ingest", context,
                                            node="gateway-0")
            assert child.parent_id == root.span_id
            assert child.trace_id == "tx:1"
            tracer.end_span(child)
        tracer.end_span(root)
        assert {s.name for s in tracer.finished()} == {
            "tx.lifecycle", "tx.ingest", "unrelated.driver.work"}

    def test_explicit_spans_close_individually(self):
        """Ending one explicit span must not unwind its siblings (they
        are concurrent, not nested)."""
        tracer = Tracer()
        root = tracer.start_root_span("root", trace_id="tx:1")
        context = tracer.context_of(root)
        a = tracer.start_child_span("hop.a", context)
        b = tracer.start_child_span("hop.b", context)
        tracer.end_span(a)
        assert not b.finished
        tracer.end_span(b)
        tracer.end_span(root)
        assert all(s.finished for s in tracer.finished())

    def test_double_end_of_explicit_span_raises(self):
        tracer = Tracer()
        root = tracer.start_root_span("root", trace_id="tx:1")
        tracer.end_span(root)
        with pytest.raises(ValueError):
            tracer.end_span(root)

    def test_lexical_child_inherits_trace_id(self):
        tracer = Tracer()
        root = tracer.start_root_span("root", trace_id="tx:1")
        child = tracer.start_child_span(
            "hop", tracer.context_of(root))
        with tracer.span("inner"):
            pass
        (inner,) = tracer.finished("inner")
        # A lexical span opened while no explicit span is on the stack
        # has no trace id of its own...
        assert inner.trace_id == ""
        tracer.end_span(child)
        tracer.end_span(root)


class TestAmbientContext:
    def test_activate_scopes_current(self):
        tracer = Tracer()
        context = TraceContext("tx:1", 42)
        assert tracer.current is None
        with tracer.activate(context):
            assert tracer.current == context
            assert tracer.capture() == context
        assert tracer.current is None

    def test_activate_none_clears_stale_context(self):
        """Restoring a captured None must hide the interrupted
        context — a scheduler callback with no trace attached must not
        inherit whatever was ambient before it ran."""
        tracer = Tracer()
        with tracer.activate(TraceContext("tx:1", 1)):
            with tracer.activate(None):
                assert tracer.current is None
            assert tracer.current == TraceContext("tx:1", 1)

    def test_scheduler_binder_propagates_context(self):
        """Contexts captured at schedule time are restored around the
        callback: the delivery of a message scheduled inside a trace
        sees that trace, later unrelated events do not."""
        scheduler = EventScheduler()
        tracer = Tracer(scheduler.clock)
        scheduler.trace_binder = tracer
        seen = {}
        context = TraceContext("tx:1", 7)
        with tracer.activate(context):
            scheduler.schedule(1.0, lambda: seen.update(a=tracer.current))
        scheduler.schedule(2.0, lambda: seen.update(b=tracer.current))
        scheduler.run_until(3.0)
        assert seen["a"] == context
        assert seen["b"] is None


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", key="value") as span:
            span.set_attribute("ignored", 1)
        assert NULL_TRACER.finished() == []
        assert not NullTracer.enabled

    def test_null_tracer_explicit_surface(self):
        """The causal API must be callable against the null tracer."""
        root = NULL_TRACER.start_root_span("root", trace_id="tx:1")
        child = NULL_TRACER.start_child_span(
            "hop", NULL_TRACER.context_of(root))
        NULL_TRACER.end_span(child)
        NULL_TRACER.end_span(root)
        assert NULL_TRACER.current is None
        assert NULL_TRACER.capture() is None
        with NULL_TRACER.activate(None):
            pass
        assert NULL_TRACER.finished() == []
