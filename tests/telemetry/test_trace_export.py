"""Trace artifacts: Chrome trace JSON shape, critical-path analysis,
causal-tree rendering, lifecycle reports."""

import json

import pytest

from repro.telemetry.lifecycle import LifecycleTracker
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace_export import (
    chrome_trace_json,
    critical_path,
    dominant_stage,
    lifecycle_report,
    render_causal_tree,
    render_lifecycle_text,
    to_chrome_trace,
)
from repro.telemetry.tracer import Tracer


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def now(self):
        return self.t


def build_sample():
    """One fully-traced transaction plus one driver span."""
    clock = FakeClock()
    tracer = Tracer(clock)
    tracker = LifecycleTracker(clock, tracer=tracer,
                               registry=MetricsRegistry(clock))
    with tracer.span("driver.phase"):
        handle = tracker.begin_submission("device-0")
        clock.t = 0.1
        tracker.record_handle(handle, "tips_received", "device-0")
        clock.t = 0.3
        tracker.bind(handle, b"\xab" * 32, difficulty=8)
        clock.t = 0.4
        tracker.record(b"\xab" * 32, "received", "gateway-0")
        with tracker.ingest(b"\xab" * 32, node="gateway-0",
                            source="device-0"):
            tracker.record(b"\xab" * 32, "attached", "gateway-0")
            clock.t = 0.5
            tracker.record(b"\xab" * 32, "received", "manager")
            with tracker.ingest(b"\xab" * 32, node="manager",
                                source="gateway-0"):
                tracker.record(b"\xab" * 32, "attached", "manager")
        clock.t = 3.0
    return clock, tracer, tracker


def sweep_confirm(tracker, clock, t=2.0):
    class Tangle:
        def __contains__(self, tx_hash):
            return True

        def is_confirmed(self, tx_hash, threshold):
            return True

    class Node:
        tangle = Tangle()

    clock.t = t
    tracker.sweep_confirmations([Node(), Node()])


class TestChromeTrace:
    def test_document_shape(self):
        clock, tracer, tracker = build_sample()
        tracker.finalize(node_count=2)
        doc = to_chrome_trace(tracer, tracker)
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"M", "X", "i"}

    def test_rows_partition_by_trace(self):
        clock, tracer, tracker = build_sample()
        tracker.finalize(node_count=2)
        doc = to_chrome_trace(tracer, tracker)
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["ph"] == "M"}
        assert names == {"driver", "tx:device-0:00001"}
        driver_tid = next(e["tid"] for e in doc["traceEvents"]
                          if e["ph"] == "M"
                          and e["args"]["name"] == "driver")
        tx_tid = next(e["tid"] for e in doc["traceEvents"]
                      if e["ph"] == "M"
                      and e["args"]["name"] != "driver")
        span_rows = {e["name"]: e["tid"] for e in doc["traceEvents"]
                     if e["ph"] == "X"}
        assert span_rows["driver.phase"] == driver_tid
        assert span_rows["tx.lifecycle"] == tx_tid
        assert span_rows["tx.ingest"] == tx_tid

    def test_timestamps_are_sim_microseconds(self):
        clock, tracer, tracker = build_sample()
        tracker.finalize(node_count=2)
        doc = to_chrome_trace(tracer, tracker)
        root = next(e for e in doc["traceEvents"]
                    if e["ph"] == "X" and e["name"] == "tx.lifecycle")
        assert root["ts"] == 0.0
        assert root["dur"] == pytest.approx(3.0 * 1e6)
        stages = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in stages} >= {
            "stage:submitted", "stage:pow_solved", "stage:attached"}

    def test_json_is_canonical_and_parseable(self):
        clock, tracer, tracker = build_sample()
        encoded = chrome_trace_json(tracer, tracker)
        assert json.loads(encoded)["traceEvents"]
        assert encoded == chrome_trace_json(tracer, tracker)
        assert " " not in encoded.split('"driver.phase"')[0]


class TestCriticalPath:
    def test_segments_and_dominant(self):
        clock, tracer, tracker = build_sample()
        sweep_confirm(tracker, clock)
        (timeline,) = tracker.timelines()
        segments = dict(critical_path(timeline))
        assert segments["tips_rtt"] == pytest.approx(0.1)
        assert segments["pow"] == pytest.approx(0.2)
        assert segments["first_hop"] == pytest.approx(0.1)
        assert segments["validation"] == pytest.approx(0.0)
        assert segments["propagation"] == pytest.approx(0.1)
        assert segments["confirmation_wait"] == pytest.approx(1.6)
        assert dominant_stage(timeline) == "confirmation_wait"

    def test_missing_stages_are_omitted(self):
        clock = FakeClock()
        tracker = LifecycleTracker(clock, tracer=Tracer(clock),
                                   registry=MetricsRegistry(clock))
        handle = tracker.begin_submission("device-0")
        assert critical_path(handle) == []
        assert dominant_stage(handle) is None


class TestRendering:
    def test_causal_tree_lists_every_node_and_stage(self):
        clock, tracer, tracker = build_sample()
        sweep_confirm(tracker, clock)
        (timeline,) = tracker.timelines()
        tree = render_causal_tree(timeline)
        assert "tx:device-0:00001" in tree
        assert "device-0 [submitted@+0.000s" in tree
        assert "gateway-0" in tree and "manager" in tree
        assert "confirmed@+2.000s" in tree
        assert "dominant=confirmation_wait" in tree

    def test_lifecycle_report_counts_and_paths(self):
        clock, tracer, tracker = build_sample()
        sweep_confirm(tracker, clock)
        report = lifecycle_report(tracker, node_count=2)
        assert report["sampled"] == 1
        assert report["delivered"] == 1
        assert report["confirmed"] == 1
        assert report["propagation_coverage"] == pytest.approx(1.0)
        assert report["submit_to_attach"]["count"] == 1
        (record,) = report["transactions"]
        assert record["dominant_stage"] == "confirmation_wait"
        assert dict(record["critical_path"])["pow"] == pytest.approx(0.2)
        totals = report["critical_path_totals"]
        assert totals["confirmation_wait"]["dominant_count"] == 1

    def test_lifecycle_text_renders_summary_and_trees(self):
        clock, tracer, tracker = build_sample()
        sweep_confirm(tracker, clock)
        text = render_lifecycle_text(tracker, node_count=2)
        assert text.startswith("transaction lifecycle report")
        assert "sampled=1 delivered=1 confirmed=1" in text
        assert "submit->attach:" in text
        assert "tx:device-0:00001" in text

    def test_empty_lifecycle_report(self):
        clock = FakeClock()
        tracker = LifecycleTracker(clock, tracer=Tracer(clock),
                                   registry=MetricsRegistry(clock))
        report = lifecycle_report(tracker, node_count=3)
        assert report["sampled"] == 0
        assert report["transactions"] == []
        assert report["submit_to_attach"]["p50"] is None
        text = render_lifecycle_text(tracker, node_count=3)
        assert "sampled=0" in text
