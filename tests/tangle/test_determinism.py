"""Tip-selection determinism: same seed ⇒ same sequence.

Replicas must be able to reproduce each other's tip choices from the
same ledger state and RNG seed — the walk bounding (milestone entry
points) and all the tangle-side caching must not leak iteration-order
or wall-clock nondeterminism into selection.  Covered:

* repeated runs over the same tangle;
* independently rebuilt tangles from the same schedule;
* snapshot/restore round-trips (both the no-prune identity case and
  double-restores of a pruning snapshot, including JSON);
* tangles deep enough that the weighted walk actually uses its bounded
  entry point (max height ≫ start_depth).
"""

import random

import pytest

from repro.tangle.errors import UnknownParentError
from repro.tangle.snapshot import TangleSnapshot, take_snapshot
from repro.tangle.tangle import Tangle
from repro.tangle.tip_selection import (
    UniformRandomTipSelector,
    WeightedRandomWalkSelector,
)

from .schedules import random_growth_schedule

SELECTORS = {
    "uniform": lambda: UniformRandomTipSelector(),
    "weighted": lambda: WeightedRandomWalkSelector(alpha=0.2),
    "weighted-bounded": lambda: WeightedRandomWalkSelector(alpha=0.2,
                                                           start_depth=5),
}


def build_tangle(seed=21, length=90, **kwargs):
    genesis, schedule = random_growth_schedule(seed, length=length)
    tangle = Tangle(genesis, **kwargs)
    for tx in schedule:
        tangle.attach(tx, arrival_time=tx.timestamp)
    return tangle


def selection_sequence(selector, tangle, seed, count=15):
    rng = random.Random(seed)
    return [selector.select(tangle, rng) for _ in range(count)]


class TestSameSeedSameSequence:
    @pytest.mark.parametrize("name", sorted(SELECTORS))
    def test_repeated_runs_identical(self, name):
        tangle = build_tangle()
        first = selection_sequence(SELECTORS[name](), tangle, seed=3)
        second = selection_sequence(SELECTORS[name](), tangle, seed=3)
        assert first == second

    @pytest.mark.parametrize("name", sorted(SELECTORS))
    def test_rebuilt_tangle_identical(self, name):
        a = build_tangle()
        b = build_tangle(weight_flush_interval=1)  # different engine epochs
        assert selection_sequence(SELECTORS[name](), a, seed=9) == \
            selection_sequence(SELECTORS[name](), b, seed=9)

    def test_bounded_walk_really_is_bounded(self):
        """The deep tangle must exercise the milestone entry point (the
        determinism above would hold vacuously if walks still started
        at genesis)."""
        tangle = build_tangle()
        selector = WeightedRandomWalkSelector(alpha=0.2, start_depth=5)
        assert tangle.max_height > selector.start_depth
        entry = selector._walk_entry_point(tangle)
        assert entry != tangle.genesis.tx_hash
        assert tangle.height(entry) == tangle.max_height - 5


class TestSnapshotRoundTrips:
    @pytest.mark.parametrize("name", sorted(SELECTORS))
    def test_noprune_restore_preserves_selection(self, name):
        """A snapshot that prunes nothing restores an identical ledger:
        selection sequences must match the original exactly."""
        tangle = build_tangle()
        snapshot = take_snapshot(tangle, now=1000.0,
                                 keep_recent_seconds=10_000.0)
        assert snapshot.pruned_count == 0
        restored = snapshot.restore()
        assert selection_sequence(SELECTORS[name](), tangle, seed=17) == \
            selection_sequence(SELECTORS[name](), restored, seed=17)

    @pytest.mark.parametrize("name", sorted(SELECTORS))
    def test_pruning_double_restore_identical(self, name):
        """Two restores of the same pruning snapshot — one via JSON —
        must select identically (a bootstrap gateway and a storage-
        reclaiming one agree)."""
        tangle = build_tangle()
        snapshot = take_snapshot(tangle, now=1000.0,
                                 keep_recent_seconds=950.0,
                                 min_weight_to_prune=3)
        assert snapshot.pruned_count > 0
        direct = snapshot.restore()
        round_tripped = TangleSnapshot.from_json(snapshot.to_json()).restore(
            weight_flush_interval=1)
        assert selection_sequence(SELECTORS[name](), direct, seed=29) == \
            selection_sequence(SELECTORS[name](), round_tripped, seed=29)

    def test_restored_tangle_keeps_growing_deterministically(self):
        """Selection stays deterministic while the restored tangle grows
        past the snapshot — the full lifecycle, not just a frozen read."""
        genesis, schedule = random_growth_schedule(33, length=80)
        grown = []
        for weight_flush_interval in (1, 64):
            tangle = Tangle(genesis,
                            weight_flush_interval=weight_flush_interval)
            for tx in schedule[:50]:
                tangle.attach(tx, arrival_time=tx.timestamp)
            snapshot = take_snapshot(tangle, now=45.0,
                                     keep_recent_seconds=20.0,
                                     min_weight_to_prune=3)
            restored = snapshot.restore(
                weight_flush_interval=weight_flush_interval)
            selector = WeightedRandomWalkSelector(alpha=0.1, start_depth=4)
            rng = random.Random(7)
            picks = []
            for tx in schedule[50:]:
                picks.append(selector.select(restored, rng))
                try:
                    restored.attach(tx, arrival_time=tx.timestamp)
                except UnknownParentError:
                    # The schedule references a pruned transaction no
                    # retained child kept alive as an entry point; both
                    # engine variants must skip the same ones.
                    picks.append("rejected")
            grown.append(picks)
        assert grown[0] == grown[1]
