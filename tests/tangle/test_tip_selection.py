"""Tests for repro.tangle.tip_selection."""

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.tangle.tangle import Tangle
from repro.tangle.tip_selection import (
    FixedPairTipSelector,
    UniformRandomTipSelector,
    WeightedRandomWalkSelector,
)
from repro.tangle.transaction import Transaction

KEYS = KeyPair.generate(seed=b"tips-tests")


def child_of(tangle, a, b, *, payload, timestamp=1.0):
    tx = Transaction.create(
        KEYS, kind="data", payload=payload, timestamp=timestamp,
        branch=a, trunk=b, difficulty=1,
    )
    tangle.attach(tx, arrival_time=timestamp)
    return tx


@pytest.fixture()
def tangle():
    return Tangle(Transaction.create_genesis(KEYS))


class TestUniformRandom:
    def test_single_tip_duplicated(self, tangle, rng):
        branch, trunk = UniformRandomTipSelector().select(tangle, rng)
        assert branch == trunk == tangle.genesis.tx_hash

    def test_two_tips_both_selected(self, tangle, rng):
        g = tangle.genesis.tx_hash
        a = child_of(tangle, g, g, payload=b"a")
        b = child_of(tangle, a.tx_hash, a.tx_hash, payload=b"b", timestamp=2.0)
        c = child_of(tangle, a.tx_hash, a.tx_hash, payload=b"c", timestamp=2.0)
        branch, trunk = UniformRandomTipSelector().select(tangle, rng)
        assert {branch, trunk} == {b.tx_hash, c.tx_hash}

    def test_selects_only_tips(self, tangle, rng):
        g = tangle.genesis.tx_hash
        previous = child_of(tangle, g, g, payload=b"first")
        for i in range(10):
            previous = child_of(
                tangle, previous.tx_hash, previous.tx_hash,
                payload=f"tx-{i}".encode(), timestamp=float(i + 2),
            )
        selector = UniformRandomTipSelector()
        for _ in range(20):
            branch, trunk = selector.select(tangle, rng)
            assert tangle.is_tip(branch)
            assert tangle.is_tip(trunk)

    def test_deterministic_with_seed(self, tangle):
        g = tangle.genesis.tx_hash
        a = child_of(tangle, g, g, payload=b"a")
        child_of(tangle, g, a.tx_hash, payload=b"b", timestamp=2.0)
        child_of(tangle, g, a.tx_hash, payload=b"c", timestamp=2.0)
        pick1 = UniformRandomTipSelector().select(tangle, random.Random(5))
        pick2 = UniformRandomTipSelector().select(tangle, random.Random(5))
        assert pick1 == pick2


class TestWeightedRandomWalk:
    def test_terminates_on_tips(self, tangle, rng):
        g = tangle.genesis.tx_hash
        previous = child_of(tangle, g, g, payload=b"a")
        for i in range(15):
            previous = child_of(
                tangle, previous.tx_hash, previous.tx_hash,
                payload=f"w-{i}".encode(), timestamp=float(i + 2),
            )
        selector = WeightedRandomWalkSelector(alpha=0.1)
        branch, trunk = selector.select(tangle, rng)
        assert tangle.is_tip(branch)
        assert tangle.is_tip(trunk)

    def test_alpha_biases_toward_heavy_branch(self, tangle):
        # Build a heavy main branch and a one-transaction parasite.
        g = tangle.genesis.tx_hash
        heavy = child_of(tangle, g, g, payload=b"heavy-root")
        tip = heavy
        for i in range(20):
            tip = child_of(
                tangle, tip.tx_hash, tip.tx_hash,
                payload=f"heavy-{i}".encode(), timestamp=float(i + 2),
            )
        parasite = child_of(tangle, g, g, payload=b"parasite", timestamp=30.0)
        selector = WeightedRandomWalkSelector(alpha=2.0)
        rng = random.Random(0)
        picks = [selector.select(tangle, rng)[0] for _ in range(60)]
        heavy_hits = sum(1 for p in picks if p == tip.tx_hash)
        parasite_hits = sum(1 for p in picks if p == parasite.tx_hash)
        assert heavy_hits > parasite_hits
        assert heavy_hits >= 50  # strong bias at alpha=2

    def test_alpha_zero_still_valid(self, tangle, rng):
        g = tangle.genesis.tx_hash
        child_of(tangle, g, g, payload=b"a")
        selector = WeightedRandomWalkSelector(alpha=0.0)
        branch, trunk = selector.select(tangle, rng)
        assert tangle.is_tip(branch) and tangle.is_tip(trunk)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WeightedRandomWalkSelector(alpha=-0.1)
        with pytest.raises(ValueError):
            WeightedRandomWalkSelector(start_depth=0)


class TestFixedPair:
    def test_always_returns_pin(self, tangle, rng):
        g = tangle.genesis.tx_hash
        child_of(tangle, g, g, payload=b"fresh")
        selector = FixedPairTipSelector(g)
        assert selector.select(tangle, rng) == (g, g)

    def test_distinct_pair(self, tangle, rng):
        g = tangle.genesis.tx_hash
        a = child_of(tangle, g, g, payload=b"a")
        selector = FixedPairTipSelector(g, a.tx_hash)
        assert selector.select(tangle, rng) == (g, a.tx_hash)

    def test_unknown_pin_rejected(self, tangle, rng):
        selector = FixedPairTipSelector(b"\x42" * 32)
        with pytest.raises(ValueError):
            selector.select(tangle, rng)
