"""Deliberately naive reference tangle for differential testing.

Every query recomputes its answer from scratch with the most obvious
algorithm available — no caches, no incremental state, no batching.
That makes this implementation trivially auditable (each method is a
direct transcription of the definition) and therefore a trustworthy
oracle for the optimized :class:`repro.tangle.tangle.Tangle`: the
differential tests grow both structures through identical schedules and
assert the answers never diverge.

Keep this file boring.  Its only job is to be obviously correct.
"""

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.tangle.transaction import Transaction


class ReferenceTangle:
    """O(n) / O(n²) from-scratch implementation of the tangle queries.

    Accepts the same :class:`Transaction` objects as the real tangle
    (structural inputs are assumed valid — the reference checks
    structure only, never crypto).
    """

    def __init__(self, genesis: Transaction,
                 entry_points: Optional[Dict[bytes, float]] = None):
        self.genesis = genesis
        self._entry_points = dict(entry_points or {})
        self._transactions: Dict[bytes, Transaction] = {genesis.tx_hash: genesis}
        self._order: List[bytes] = [genesis.tx_hash]
        self._retired: Set[bytes] = set()

    # -- growth ----------------------------------------------------------

    def attach(self, tx: Transaction) -> None:
        if tx.tx_hash in self._transactions:
            raise ValueError("duplicate")
        for parent in (tx.branch, tx.trunk):
            if parent not in self._transactions and parent not in self._entry_points:
                raise ValueError("unknown parent")
        self._transactions[tx.tx_hash] = tx
        self._order.append(tx.tx_hash)
        # A retired boundary that gains a live approver is buried by
        # retained history again — no longer a boundary.
        self._retired.discard(tx.branch)
        self._retired.discard(tx.trunk)

    def retire_tip(self, tx_hash: bytes) -> None:
        if self._is_tip_structurally(tx_hash):
            self._retired.add(tx_hash)

    # -- from-scratch queries --------------------------------------------

    def parents(self, tx_hash: bytes) -> Tuple[bytes, ...]:
        tx = self._transactions[tx_hash]
        if tx.is_genesis:
            return ()
        return (tx.branch, tx.trunk)

    def approvers(self, tx_hash: bytes) -> Set[bytes]:
        return {
            h for h, tx in self._transactions.items()
            if not tx.is_genesis and tx_hash in (tx.branch, tx.trunk)
        }

    def _is_tip_structurally(self, tx_hash: bytes) -> bool:
        return not self.approvers(tx_hash)

    def tips(self) -> List[bytes]:
        """Definition: transactions with no approvers, minus retired."""
        return sorted(
            h for h in self._transactions
            if self._is_tip_structurally(h) and h not in self._retired
        )

    def weight(self, tx_hash: bytes) -> int:
        """Definition: 1 + number of (in)direct approvers (full BFS)."""
        seen = {tx_hash}
        queue = deque([tx_hash])
        while queue:
            for child in self.approvers(queue.popleft()):
                if child not in seen:
                    seen.add(child)
                    queue.append(child)
        return len(seen)

    def height(self, tx_hash: bytes) -> int:
        """Definition: longest path from genesis, recomputed bottom-up
        (entry points sit at height 0)."""
        heights: Dict[bytes, int] = {}
        for h in self._order:  # arrival order is topological
            parents = self.parents(h)
            if not parents:
                heights[h] = 0
            else:
                heights[h] = 1 + max(heights.get(p, 0) for p in set(parents))
        return heights[tx_hash]

    def depth_from_tips(self, tx_hash: bytes) -> Optional[int]:
        """Definition: shortest approver-path to a live tip; falls back
        to the nearest retired burial boundary when no live tip is
        reachable (mirrors the optimized semantics).  Returns None only
        if the transaction is unreachable from both — impossible by
        construction."""
        live = self._bfs_to(tx_hash, set(self.tips()))
        if live is not None:
            return live
        return self._bfs_to(tx_hash, self._retired)

    def _bfs_to(self, tx_hash: bytes, targets: Set[bytes]) -> Optional[int]:
        if tx_hash in targets:
            return 0
        distance = {tx_hash: 0}
        queue = deque([tx_hash])
        best = None
        while queue:
            current = queue.popleft()
            for child in self.approvers(current):
                if child in distance:
                    continue
                distance[child] = distance[current] + 1
                if child in targets:
                    best = distance[child] if best is None else min(best, distance[child])
                else:
                    queue.append(child)
        return best
