"""Tests for repro.tangle.validation."""

import pytest

from repro.crypto.keys import KeyPair
from repro.tangle.errors import (
    InvalidPowError,
    InvalidSignatureError,
    TimestampError,
)
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction
from repro.tangle.validation import (
    DEFAULT_MAX_PARENT_AGE,
    crypto_validator,
    detect_lazy_approval,
    timestamp_validator,
)

KEYS = KeyPair.generate(seed=b"validation-tests")


def fresh_tangle(*validators):
    return Tangle(Transaction.create_genesis(KEYS), validators=list(validators))


def make_child(tangle, *, difficulty=2, timestamp=1.0, payload=b"x",
               nonce=None):
    g = tangle.genesis.tx_hash
    return Transaction.create(
        KEYS, kind="data", payload=payload, timestamp=timestamp,
        branch=g, trunk=g, difficulty=difficulty, nonce=nonce,
    )


class TestCryptoValidator:
    def test_accepts_valid_transaction(self):
        tangle = fresh_tangle(crypto_validator())
        tangle.attach(make_child(tangle))

    def test_rejects_below_difficulty_floor(self):
        tangle = fresh_tangle(crypto_validator(min_difficulty=5))
        with pytest.raises(InvalidPowError, match="floor"):
            tangle.attach(make_child(tangle, difficulty=2))

    def test_rejects_bad_nonce(self):
        tangle = fresh_tangle(crypto_validator())
        tx = make_child(tangle, difficulty=14, nonce=0)
        if tx.verify_pow():  # one-in-16k fluke: skip rather than flake
            pytest.skip("nonce 0 accidentally met difficulty")
        with pytest.raises(InvalidPowError):
            tangle.attach(tx)

    def test_rejects_bad_signature(self):
        tangle = fresh_tangle(crypto_validator())
        good = make_child(tangle)
        forged = Transaction(
            kind=good.kind, issuer=good.issuer, payload=b"swapped",
            timestamp=good.timestamp, branch=good.branch, trunk=good.trunk,
            difficulty=good.difficulty, nonce=good.nonce,
            signature=good.signature,
        )
        # Re-solve PoW so only the signature is wrong.
        solved = Transaction.create(
            KEYS, kind=forged.kind, payload=forged.payload,
            timestamp=forged.timestamp, branch=forged.branch,
            trunk=forged.trunk, difficulty=forged.difficulty,
        )
        bad_sig = Transaction(
            kind=solved.kind, issuer=solved.issuer, payload=solved.payload,
            timestamp=solved.timestamp, branch=solved.branch,
            trunk=solved.trunk, difficulty=solved.difficulty,
            nonce=solved.nonce, signature=good.signature,
        )
        with pytest.raises(InvalidSignatureError):
            tangle.attach(bad_sig)

    def test_simulated_pow_mode_skips_nonce_check(self):
        tangle = fresh_tangle(crypto_validator(allow_simulated_pow=True))
        tx = make_child(tangle, difficulty=14, nonce=0)
        tangle.attach(tx)  # accepted despite the (almost surely) bad nonce
        assert tx.tx_hash in tangle


class TestTimestampValidator:
    def test_accepts_reasonable_timestamp(self):
        tangle = fresh_tangle(timestamp_validator())
        tangle.attach(make_child(tangle, timestamp=1.0))

    def test_rejects_far_future(self):
        tangle = fresh_tangle(timestamp_validator(max_future_skew=5.0))
        with pytest.raises(TimestampError, match="ahead"):
            tangle.attach(make_child(tangle, timestamp=100.0))

    def test_rejects_before_parent(self):
        tangle = fresh_tangle(timestamp_validator())
        first = make_child(tangle, timestamp=3.0)
        tangle.attach(first, arrival_time=3.0)
        child = Transaction.create(
            KEYS, kind="data", payload=b"y", timestamp=1.0,
            branch=first.tx_hash, trunk=first.tx_hash, difficulty=2,
        )
        with pytest.raises(TimestampError, match="predates"):
            tangle.attach(child)


class TestLazyDetection:
    def _result_with_ages(self, tangle, ages):
        tx = make_child(tangle, timestamp=max(ages) + 1.0)
        result = tangle.attach(tx, arrival_time=max(ages))
        # Rebuild an AttachResult with the ages we want to probe.
        from repro.tangle.tangle import AttachResult
        return AttachResult(
            transaction=tx,
            arrival_time=result.arrival_time,
            parents_were_tips=(True, True),
            parent_ages=tuple(ages),
            new_tip_count=1,
        )

    def test_fresh_parents_not_lazy(self):
        tangle = fresh_tangle()
        result = self._result_with_ages(tangle, (0.5, 1.0))
        assert not detect_lazy_approval(result)

    def test_old_parent_is_lazy(self):
        tangle = fresh_tangle()
        result = self._result_with_ages(tangle, (0.5, DEFAULT_MAX_PARENT_AGE + 1))
        assert detect_lazy_approval(result)

    def test_threshold_is_configurable(self):
        tangle = fresh_tangle()
        result = self._result_with_ages(tangle, (10.0, 10.0))
        assert detect_lazy_approval(result, max_parent_age=5.0)
        assert not detect_lazy_approval(result, max_parent_age=15.0)

    def test_boundary_age_not_lazy(self):
        tangle = fresh_tangle()
        result = self._result_with_ages(
            tangle, (DEFAULT_MAX_PARENT_AGE, DEFAULT_MAX_PARENT_AGE))
        assert not detect_lazy_approval(result)

    def test_concurrent_honest_race_not_punished(self):
        """Two honest devices approving the same fresh tips: the second
        one's parents are no longer tips but must NOT be lazy."""
        tangle = fresh_tangle()
        first = make_child(tangle, payload=b"first")
        tangle.attach(first, arrival_time=1.0)
        second = make_child(tangle, payload=b"second", timestamp=1.1)
        result = tangle.attach(second, arrival_time=1.1)
        assert result.parents_were_tips == (False, False)
        assert not detect_lazy_approval(result)


class TestVerificationCache:
    def test_check_miss_then_confirm_then_hit(self):
        from repro.tangle.validation import VerificationCache

        cache = VerificationCache()
        assert not cache.check(b"h1")
        cache.confirm(b"h1")
        assert cache.check(b"h1")
        assert b"h1" in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        from repro.tangle.validation import VerificationCache

        cache = VerificationCache(max_size=2)
        cache.confirm(b"a")
        cache.confirm(b"b")
        cache.check(b"a")  # refresh a's slot
        cache.confirm(b"c")  # evicts b, the least recently used
        assert cache.evictions == 1
        assert b"b" not in cache
        assert b"a" in cache and b"c" in cache

    def test_max_size_validated(self):
        from repro.tangle.validation import VerificationCache

        with pytest.raises(ValueError):
            VerificationCache(max_size=0)

    def test_counts_hits_and_misses(self):
        from repro.telemetry.registry import MetricsRegistry
        from repro.tangle.validation import VerificationCache

        telemetry = MetricsRegistry()
        cache = VerificationCache(telemetry=telemetry)
        cache.check(b"x")
        cache.confirm(b"x")
        cache.check(b"x")
        cache.check(b"x")
        assert telemetry.counter("repro_cache_verify_hits_total").total == 2.0
        assert telemetry.counter("repro_cache_verify_misses_total").total == 1.0


class TestCryptoValidatorWithCache:
    def test_cache_skips_reverification(self, monkeypatch):
        from repro.tangle.validation import VerificationCache

        cache = VerificationCache()
        validator = crypto_validator(cache=cache)
        tangle_a = fresh_tangle(validator)
        tx = make_child(tangle_a)
        tangle_a.attach(tx)
        assert tx.full_digest in cache
        # A second tangle sharing the cache must not call the verifiers.
        tangle_b = fresh_tangle(validator)
        monkeypatch.setattr(
            Transaction, "verify_pow",
            lambda self: pytest.fail("verify_pow called on cache hit"))
        monkeypatch.setattr(
            Transaction, "verify_signature",
            lambda self: pytest.fail("verify_signature called on cache hit"))
        tangle_b.attach(tx)

    def test_difficulty_floor_checked_before_cache(self):
        from repro.tangle.validation import VerificationCache

        cache = VerificationCache()
        permissive = fresh_tangle(crypto_validator(cache=cache))
        tx = make_child(permissive, difficulty=2)
        permissive.attach(tx)
        # The same (cached) hash must still hit a stricter node's floor.
        strict = fresh_tangle(
            crypto_validator(min_difficulty=5, cache=cache))
        with pytest.raises(InvalidPowError, match="floor"):
            strict.attach(tx)

    def test_failed_verification_is_not_cached(self):
        from repro.tangle.validation import VerificationCache

        cache = VerificationCache()
        tangle = fresh_tangle(crypto_validator(cache=cache))
        tx = make_child(tangle, difficulty=14, nonce=0)
        if tx.verify_pow():
            pytest.skip("nonce 0 accidentally met difficulty")
        with pytest.raises(InvalidPowError):
            tangle.attach(tx)
        assert tx.full_digest not in cache
        assert len(cache) == 0

    def test_forged_signature_does_not_hit_shared_cache(self):
        """tx_hash does not commit to the signature, so a relayed copy
        with the same content but corrupted signature bytes must NOT
        inherit the original's cached verification."""
        from repro.tangle.validation import VerificationCache

        cache = VerificationCache()
        validator = crypto_validator(cache=cache)
        tangle_a = fresh_tangle(validator)
        good = make_child(tangle_a)
        tangle_a.attach(good)
        forged = Transaction(
            kind=good.kind, issuer=good.issuer, payload=good.payload,
            timestamp=good.timestamp, branch=good.branch, trunk=good.trunk,
            difficulty=good.difficulty, nonce=good.nonce,
            signature=bytes(64),
        )
        assert forged.tx_hash == good.tx_hash
        assert forged.full_digest != good.full_digest
        tangle_b = fresh_tangle(validator)
        with pytest.raises(InvalidSignatureError):
            tangle_b.attach(forged)
        # The genuine instance still verifies from the cache.
        tangle_b.attach(good)

    def test_simulated_confirmation_does_not_bypass_enforcing_pow(self):
        """A cache shared between a simulated-PoW validator and an
        enforcing one must not let the former's confirmations skip the
        latter's nonce check."""
        from repro.tangle.validation import VerificationCache

        cache = VerificationCache()
        permissive = fresh_tangle(
            crypto_validator(allow_simulated_pow=True, cache=cache))
        tx = make_child(permissive, difficulty=14, nonce=0)
        if tx.verify_pow():
            pytest.skip("nonce 0 accidentally met difficulty")
        permissive.attach(tx)  # confirmed signature-only
        assert tx.full_digest in cache
        enforcing = fresh_tangle(crypto_validator(cache=cache))
        with pytest.raises(InvalidPowError):
            enforcing.attach(tx)

    def test_enforcing_verification_upgrades_simulated_entry(self):
        from repro.tangle.validation import VerificationCache

        cache = VerificationCache()
        permissive = fresh_tangle(
            crypto_validator(allow_simulated_pow=True, cache=cache))
        tx = make_child(permissive)  # real PoW, also valid when enforced
        permissive.attach(tx)
        enforcing = fresh_tangle(crypto_validator(cache=cache))
        enforcing.attach(tx)  # verifies the nonce, upgrades the entry
        assert cache.check(tx.full_digest, require_pow=True)
        # ...and a later simulated confirm must not downgrade it back.
        cache.confirm(tx.full_digest, pow_verified=False)
        assert cache.check(tx.full_digest, require_pow=True)


class TestTransactionDecodeCache:
    def test_decode_hit_returns_same_instance(self):
        from repro.tangle.transaction import TransactionDecodeCache

        cache = TransactionDecodeCache()
        tangle = fresh_tangle()
        encoded = make_child(tangle).to_bytes()
        first = cache.decode(encoded)
        second = cache.decode(encoded)
        assert second is first
        assert len(cache) == 1

    def test_junk_raises_and_is_not_cached(self):
        from repro.tangle.transaction import TransactionDecodeCache

        cache = TransactionDecodeCache()
        with pytest.raises(ValueError):
            cache.decode(b"junk")
        assert len(cache) == 0
        with pytest.raises(ValueError):
            cache.decode(b"junk")

    def test_lru_eviction(self):
        from repro.tangle.transaction import TransactionDecodeCache

        cache = TransactionDecodeCache(max_size=2)
        tangle = fresh_tangle()
        payloads = [make_child(tangle, payload=bytes([i])).to_bytes()
                    for i in range(3)]
        cache.decode(payloads[0])
        cache.decode(payloads[1])
        cache.decode(payloads[0])  # refresh 0
        cache.decode(payloads[2])  # evicts 1
        assert cache.evictions == 1
        assert cache.decode(payloads[0]) is not None
        assert len(cache) == 2

    def test_counts_hits_and_misses(self):
        from repro.telemetry.registry import MetricsRegistry
        from repro.tangle.transaction import TransactionDecodeCache

        telemetry = MetricsRegistry()
        cache = TransactionDecodeCache(telemetry=telemetry)
        tangle = fresh_tangle()
        encoded = make_child(tangle).to_bytes()
        cache.decode(encoded)
        cache.decode(encoded)
        cache.decode(encoded)
        assert telemetry.counter("repro_cache_decode_hits_total").total == 2.0
        assert telemetry.counter("repro_cache_decode_misses_total").total == 1.0
