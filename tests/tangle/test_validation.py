"""Tests for repro.tangle.validation."""

import pytest

from repro.crypto.keys import KeyPair
from repro.tangle.errors import (
    InvalidPowError,
    InvalidSignatureError,
    TimestampError,
)
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction
from repro.tangle.validation import (
    DEFAULT_MAX_PARENT_AGE,
    crypto_validator,
    detect_lazy_approval,
    timestamp_validator,
)

KEYS = KeyPair.generate(seed=b"validation-tests")


def fresh_tangle(*validators):
    return Tangle(Transaction.create_genesis(KEYS), validators=list(validators))


def make_child(tangle, *, difficulty=2, timestamp=1.0, payload=b"x",
               nonce=None):
    g = tangle.genesis.tx_hash
    return Transaction.create(
        KEYS, kind="data", payload=payload, timestamp=timestamp,
        branch=g, trunk=g, difficulty=difficulty, nonce=nonce,
    )


class TestCryptoValidator:
    def test_accepts_valid_transaction(self):
        tangle = fresh_tangle(crypto_validator())
        tangle.attach(make_child(tangle))

    def test_rejects_below_difficulty_floor(self):
        tangle = fresh_tangle(crypto_validator(min_difficulty=5))
        with pytest.raises(InvalidPowError, match="floor"):
            tangle.attach(make_child(tangle, difficulty=2))

    def test_rejects_bad_nonce(self):
        tangle = fresh_tangle(crypto_validator())
        tx = make_child(tangle, difficulty=14, nonce=0)
        if tx.verify_pow():  # one-in-16k fluke: skip rather than flake
            pytest.skip("nonce 0 accidentally met difficulty")
        with pytest.raises(InvalidPowError):
            tangle.attach(tx)

    def test_rejects_bad_signature(self):
        tangle = fresh_tangle(crypto_validator())
        good = make_child(tangle)
        forged = Transaction(
            kind=good.kind, issuer=good.issuer, payload=b"swapped",
            timestamp=good.timestamp, branch=good.branch, trunk=good.trunk,
            difficulty=good.difficulty, nonce=good.nonce,
            signature=good.signature,
        )
        # Re-solve PoW so only the signature is wrong.
        solved = Transaction.create(
            KEYS, kind=forged.kind, payload=forged.payload,
            timestamp=forged.timestamp, branch=forged.branch,
            trunk=forged.trunk, difficulty=forged.difficulty,
        )
        bad_sig = Transaction(
            kind=solved.kind, issuer=solved.issuer, payload=solved.payload,
            timestamp=solved.timestamp, branch=solved.branch,
            trunk=solved.trunk, difficulty=solved.difficulty,
            nonce=solved.nonce, signature=good.signature,
        )
        with pytest.raises(InvalidSignatureError):
            tangle.attach(bad_sig)

    def test_simulated_pow_mode_skips_nonce_check(self):
        tangle = fresh_tangle(crypto_validator(allow_simulated_pow=True))
        tx = make_child(tangle, difficulty=14, nonce=0)
        tangle.attach(tx)  # accepted despite the (almost surely) bad nonce
        assert tx.tx_hash in tangle


class TestTimestampValidator:
    def test_accepts_reasonable_timestamp(self):
        tangle = fresh_tangle(timestamp_validator())
        tangle.attach(make_child(tangle, timestamp=1.0))

    def test_rejects_far_future(self):
        tangle = fresh_tangle(timestamp_validator(max_future_skew=5.0))
        with pytest.raises(TimestampError, match="ahead"):
            tangle.attach(make_child(tangle, timestamp=100.0))

    def test_rejects_before_parent(self):
        tangle = fresh_tangle(timestamp_validator())
        first = make_child(tangle, timestamp=3.0)
        tangle.attach(first, arrival_time=3.0)
        child = Transaction.create(
            KEYS, kind="data", payload=b"y", timestamp=1.0,
            branch=first.tx_hash, trunk=first.tx_hash, difficulty=2,
        )
        with pytest.raises(TimestampError, match="predates"):
            tangle.attach(child)


class TestLazyDetection:
    def _result_with_ages(self, tangle, ages):
        tx = make_child(tangle, timestamp=max(ages) + 1.0)
        result = tangle.attach(tx, arrival_time=max(ages))
        # Rebuild an AttachResult with the ages we want to probe.
        from repro.tangle.tangle import AttachResult
        return AttachResult(
            transaction=tx,
            arrival_time=result.arrival_time,
            parents_were_tips=(True, True),
            parent_ages=tuple(ages),
            new_tip_count=1,
        )

    def test_fresh_parents_not_lazy(self):
        tangle = fresh_tangle()
        result = self._result_with_ages(tangle, (0.5, 1.0))
        assert not detect_lazy_approval(result)

    def test_old_parent_is_lazy(self):
        tangle = fresh_tangle()
        result = self._result_with_ages(tangle, (0.5, DEFAULT_MAX_PARENT_AGE + 1))
        assert detect_lazy_approval(result)

    def test_threshold_is_configurable(self):
        tangle = fresh_tangle()
        result = self._result_with_ages(tangle, (10.0, 10.0))
        assert detect_lazy_approval(result, max_parent_age=5.0)
        assert not detect_lazy_approval(result, max_parent_age=15.0)

    def test_boundary_age_not_lazy(self):
        tangle = fresh_tangle()
        result = self._result_with_ages(
            tangle, (DEFAULT_MAX_PARENT_AGE, DEFAULT_MAX_PARENT_AGE))
        assert not detect_lazy_approval(result)

    def test_concurrent_honest_race_not_punished(self):
        """Two honest devices approving the same fresh tips: the second
        one's parents are no longer tips but must NOT be lazy."""
        tangle = fresh_tangle()
        first = make_child(tangle, payload=b"first")
        tangle.attach(first, arrival_time=1.0)
        second = make_child(tangle, payload=b"second", timestamp=1.1)
        result = tangle.attach(second, arrival_time=1.1)
        assert result.parents_were_tips == (False, False)
        assert not detect_lazy_approval(result)
