"""Tests for repro.tangle.transaction."""

import pytest

from repro.crypto.keys import KeyPair
from repro.tangle.transaction import (
    GENESIS_KIND,
    ZERO_HASH,
    Transaction,
    TransactionKind,
)

KEYS = KeyPair.generate(seed=b"tx-tests")
OTHER = KeyPair.generate(seed=b"tx-tests-other")


def make_tx(**overrides):
    fields = dict(
        kind=TransactionKind.DATA,
        payload=b"payload",
        timestamp=1.0,
        branch=b"\x01" * 32,
        trunk=b"\x02" * 32,
        difficulty=2,
    )
    fields.update(overrides)
    return Transaction.create(KEYS, **fields)


class TestCreation:
    def test_pow_valid(self):
        assert make_tx().verify_pow()

    def test_signature_valid(self):
        assert make_tx().verify_signature()

    def test_higher_difficulty_still_solves(self):
        assert make_tx(difficulty=8).verify_pow()

    def test_issuer_recorded(self):
        assert make_tx().issuer == KEYS.public

    def test_explicit_nonce_used(self):
        solved = make_tx(difficulty=4)
        rebuilt = Transaction.create(
            KEYS,
            kind=solved.kind,
            payload=solved.payload,
            timestamp=solved.timestamp,
            branch=solved.branch,
            trunk=solved.trunk,
            difficulty=solved.difficulty,
            nonce=solved.nonce,
        )
        assert rebuilt.tx_hash == solved.tx_hash
        assert rebuilt.verify_pow()


class TestDigests:
    def test_body_digest_independent_of_nonce(self):
        tx = make_tx(difficulty=3)
        other_nonce = Transaction(
            kind=tx.kind, issuer=tx.issuer, payload=tx.payload,
            timestamp=tx.timestamp, branch=tx.branch, trunk=tx.trunk,
            difficulty=tx.difficulty, nonce=tx.nonce + 1, signature=b"",
        )
        assert other_nonce.body_digest == tx.body_digest
        assert other_nonce.tx_hash != tx.tx_hash

    @pytest.mark.parametrize("field,value", [
        ("payload", b"different"),
        ("timestamp", 2.0),
        ("branch", b"\x09" * 32),
        ("trunk", b"\x0a" * 32),
        ("difficulty", 3),
        ("kind", TransactionKind.TRANSFER),
    ])
    def test_body_digest_covers_field(self, field, value):
        base = make_tx()
        fields = dict(
            kind=base.kind, issuer=base.issuer, payload=base.payload,
            timestamp=base.timestamp, branch=base.branch, trunk=base.trunk,
            difficulty=base.difficulty, nonce=base.nonce, signature=b"",
        )
        fields[field] = value
        assert Transaction(**fields).body_digest != base.body_digest

    def test_issuer_covered(self):
        a = make_tx()
        b = Transaction(
            kind=a.kind, issuer=OTHER.public, payload=a.payload,
            timestamp=a.timestamp, branch=a.branch, trunk=a.trunk,
            difficulty=a.difficulty, nonce=a.nonce, signature=b"",
        )
        assert a.body_digest != b.body_digest


class TestVerification:
    def test_tampered_payload_fails_both(self):
        tx = make_tx()
        forged = Transaction(
            kind=tx.kind, issuer=tx.issuer, payload=b"forged",
            timestamp=tx.timestamp, branch=tx.branch, trunk=tx.trunk,
            difficulty=tx.difficulty, nonce=tx.nonce, signature=tx.signature,
        )
        assert not forged.verify_signature()

    def test_wrong_signer_fails(self):
        tx = make_tx()
        forged = Transaction(
            kind=tx.kind, issuer=OTHER.public, payload=tx.payload,
            timestamp=tx.timestamp, branch=tx.branch, trunk=tx.trunk,
            difficulty=tx.difficulty, nonce=tx.nonce, signature=tx.signature,
        )
        assert not forged.verify_signature()

    def test_nonce_zero_usually_fails_pow(self):
        tx = make_tx(difficulty=12)
        zeroed = Transaction(
            kind=tx.kind, issuer=tx.issuer, payload=tx.payload,
            timestamp=tx.timestamp, branch=tx.branch, trunk=tx.trunk,
            difficulty=tx.difficulty, nonce=0, signature=tx.signature,
        )
        assert not zeroed.verify_pow()


class TestValidationRules:
    def test_bad_parent_length_rejected(self):
        with pytest.raises(ValueError):
            make_tx(branch=b"short")

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError):
            make_tx(kind="")

    def test_zero_difficulty_rejected(self):
        with pytest.raises(ValueError):
            Transaction(
                kind="data", issuer=KEYS.public, payload=b"", timestamp=0.0,
                branch=ZERO_HASH, trunk=ZERO_HASH, difficulty=0, nonce=0,
                signature=b"",
            )

    def test_nonce_range_enforced(self):
        with pytest.raises(ValueError):
            Transaction(
                kind="data", issuer=KEYS.public, payload=b"", timestamp=0.0,
                branch=ZERO_HASH, trunk=ZERO_HASH, difficulty=1,
                nonce=2 ** 64, signature=b"",
            )


class TestGenesis:
    def test_create_genesis(self):
        genesis = Transaction.create_genesis(KEYS, payload=b"config")
        assert genesis.is_genesis
        assert genesis.kind == GENESIS_KIND
        assert genesis.branch == ZERO_HASH
        assert genesis.trunk == ZERO_HASH
        assert genesis.verify_pow()
        assert genesis.verify_signature()

    def test_non_genesis_kind(self):
        assert not make_tx().is_genesis


class TestSerialisation:
    def test_roundtrip(self):
        tx = make_tx(payload=b"\x00\x01\x02binary\xff")
        restored = Transaction.from_bytes(tx.to_bytes())
        assert restored == tx
        assert restored.tx_hash == tx.tx_hash
        assert restored.verify_pow() and restored.verify_signature()

    def test_roundtrip_empty_payload(self):
        tx = make_tx(payload=b"")
        assert Transaction.from_bytes(tx.to_bytes()) == tx

    def test_rejects_truncation(self):
        encoded = make_tx().to_bytes()
        with pytest.raises(ValueError):
            Transaction.from_bytes(encoded[:-5])

    def test_rejects_trailing_junk(self):
        encoded = make_tx().to_bytes()
        with pytest.raises(ValueError):
            Transaction.from_bytes(encoded + b"junk")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            Transaction.from_bytes(b"\x00\x01")

    def test_repr_is_informative(self):
        tx = make_tx()
        assert tx.short_hash in repr(tx)
        assert "data" in repr(tx)


class TestMemoisation:
    def test_digests_are_computed_once(self):
        tx = make_tx()
        assert tx.tx_hash is tx.tx_hash
        assert tx.body_digest is tx.body_digest
        assert tx.pow_challenge is tx.pow_challenge

    def test_to_bytes_returns_cached_encoding(self):
        tx = make_tx()
        first = tx.to_bytes()
        assert tx.to_bytes() is first

    def test_from_bytes_seeds_encoding_memo(self):
        encoded = make_tx().to_bytes()
        decoded = Transaction.from_bytes(encoded)
        assert decoded.to_bytes() == encoded
        assert decoded.to_bytes() is decoded.to_bytes()

    def test_round_trip_hash_stable_through_memo(self):
        tx = make_tx()
        decoded = Transaction.from_bytes(tx.to_bytes())
        assert decoded.tx_hash == tx.tx_hash
        assert decoded.body_digest == tx.body_digest
