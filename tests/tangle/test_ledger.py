"""Tests for repro.tangle.ledger (transfers and double spending)."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.keys import KeyPair
from repro.tangle.errors import (
    DoubleSpendError,
    InsufficientFundsError,
    MalformedPayloadError,
)
from repro.tangle.ledger import TokenLedger, TransferPayload
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction, TransactionKind

ALICE = KeyPair.generate(seed=b"ledger-alice")
BOB = KeyPair.generate(seed=b"ledger-bob")


def transfer_tx(sender_keys, recipient_id, amount, sequence, *,
                timestamp=1.0, parents=None):
    payload = TransferPayload(
        sender=sender_keys.node_id,
        recipient=recipient_id,
        amount=amount,
        sequence=sequence,
    )
    branch = trunk = parents if parents is not None else b"\x01" * 32
    return Transaction.create(
        sender_keys, kind=TransactionKind.TRANSFER,
        payload=payload.to_bytes(), timestamp=timestamp,
        branch=branch, trunk=trunk, difficulty=1,
    )


class TestTransferPayload:
    def test_roundtrip(self):
        payload = TransferPayload(ALICE.node_id, BOB.node_id, 7, 3)
        assert TransferPayload.from_bytes(payload.to_bytes()) == payload

    def test_rejects_bad_ids(self):
        with pytest.raises(ValueError):
            TransferPayload(b"short", BOB.node_id, 1, 0)

    def test_rejects_non_positive_amount(self):
        with pytest.raises(ValueError):
            TransferPayload(ALICE.node_id, BOB.node_id, 0, 0)
        with pytest.raises(ValueError):
            TransferPayload(ALICE.node_id, BOB.node_id, -5, 0)

    def test_rejects_negative_sequence(self):
        with pytest.raises(ValueError):
            TransferPayload(ALICE.node_id, BOB.node_id, 1, -1)

    def test_rejects_garbage_bytes(self):
        with pytest.raises(MalformedPayloadError):
            TransferPayload.from_bytes(b"not json at all")

    @given(st.integers(min_value=1, max_value=10 ** 9),
           st.integers(min_value=0, max_value=10 ** 6))
    def test_property_roundtrip(self, amount, sequence):
        payload = TransferPayload(ALICE.node_id, BOB.node_id, amount, sequence)
        assert TransferPayload.from_bytes(payload.to_bytes()) == payload


class TestBalances:
    def test_initial_balances(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        assert ledger.balance(ALICE.node_id) == 100
        assert ledger.balance(BOB.node_id) == 0
        assert ledger.total_supply == 100

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            TokenLedger({ALICE.node_id: -1})

    def test_apply_moves_tokens(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        tx = transfer_tx(ALICE, BOB.node_id, 30, 0)
        ledger.apply(tx)
        assert ledger.balance(ALICE.node_id) == 70
        assert ledger.balance(BOB.node_id) == 30
        assert ledger.total_supply == 100

    def test_sequences_advance(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        assert ledger.next_sequence(ALICE.node_id) == 0
        ledger.apply(transfer_tx(ALICE, BOB.node_id, 10, 0))
        assert ledger.next_sequence(ALICE.node_id) == 1

    def test_credit_mints(self):
        ledger = TokenLedger()
        ledger.credit(ALICE.node_id, 50)
        assert ledger.balance(ALICE.node_id) == 50
        with pytest.raises(ValueError):
            ledger.credit(ALICE.node_id, 0)

    def test_insufficient_funds(self):
        ledger = TokenLedger({ALICE.node_id: 5})
        with pytest.raises(InsufficientFundsError):
            ledger.apply(transfer_tx(ALICE, BOB.node_id, 10, 0))

    def test_received_tokens_are_spendable(self):
        ledger = TokenLedger({ALICE.node_id: 10})
        ledger.apply(transfer_tx(ALICE, BOB.node_id, 10, 0))
        ledger.apply(transfer_tx(BOB, ALICE.node_id, 4, 0))
        assert ledger.balance(ALICE.node_id) == 4
        assert ledger.balance(BOB.node_id) == 6


class TestDoubleSpend:
    def test_same_sequence_different_content_rejected(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        first = transfer_tx(ALICE, BOB.node_id, 10, 0)
        second = transfer_tx(ALICE, ALICE.node_id, 10, 0, timestamp=2.0)
        ledger.apply(first)
        with pytest.raises(DoubleSpendError):
            ledger.validate(second, now=5.0)
        assert len(ledger.conflicts) == 1
        record = ledger.conflicts[0]
        assert record.sender == ALICE.node_id
        assert record.sequence == 0
        assert record.accepted_tx == first.tx_hash
        assert record.rejected_tx == second.tx_hash
        assert record.detected_at == 5.0

    def test_same_transaction_revalidates_fine(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        tx = transfer_tx(ALICE, BOB.node_id, 10, 0)
        ledger.apply(tx)
        # Re-validating the identical transaction is not a conflict.
        ledger.validate(tx)
        assert not ledger.conflicts

    def test_spent_tx_lookup(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        tx = transfer_tx(ALICE, BOB.node_id, 10, 0)
        ledger.apply(tx)
        assert ledger.spent_tx(ALICE.node_id, 0) == tx.tx_hash
        assert ledger.spent_tx(ALICE.node_id, 1) is None

    def test_issuer_must_match_sender(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        payload = TransferPayload(ALICE.node_id, BOB.node_id, 10, 0)
        forged = Transaction.create(
            BOB, kind=TransactionKind.TRANSFER, payload=payload.to_bytes(),
            timestamp=1.0, branch=b"\x01" * 32, trunk=b"\x01" * 32,
            difficulty=1,
        )
        with pytest.raises(MalformedPayloadError):
            ledger.validate(forged)

    def test_decode_rejects_non_transfer(self):
        tx = Transaction.create(
            ALICE, kind=TransactionKind.DATA, payload=b"data",
            timestamp=1.0, branch=b"\x01" * 32, trunk=b"\x01" * 32,
            difficulty=1,
        )
        with pytest.raises(MalformedPayloadError):
            TokenLedger.decode(tx)


class TestApplyOrConflict:
    """Asynchronous-consensus arbitration: lowest hash wins, replicas
    converge on the same balances regardless of arrival order."""

    def _conflict_pair(self):
        a = transfer_tx(ALICE, BOB.node_id, 10, 0)
        b = transfer_tx(ALICE, ALICE.node_id, 10, 0, timestamp=2.0)
        return sorted([a, b], key=lambda tx: tx.tx_hash)  # (winner, loser)

    def test_applied_then_duplicate(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        tx = transfer_tx(ALICE, BOB.node_id, 10, 0)
        assert ledger.apply_or_conflict(tx) == "applied"
        assert ledger.apply_or_conflict(tx) == "duplicate"
        assert ledger.balance(BOB.node_id) == 10

    def test_loser_then_winner_replaces(self):
        winner, loser = self._conflict_pair()
        ledger = TokenLedger({ALICE.node_id: 100})
        assert ledger.apply_or_conflict(loser) == "applied"
        assert ledger.apply_or_conflict(winner) == "conflict-replaced"
        assert ledger.spent_tx(ALICE.node_id, 0) == winner.tx_hash
        assert len(ledger.conflicts) == 1

    def test_winner_then_loser_rejected(self):
        winner, loser = self._conflict_pair()
        ledger = TokenLedger({ALICE.node_id: 100})
        assert ledger.apply_or_conflict(winner) == "applied"
        assert ledger.apply_or_conflict(loser) == "conflict-rejected"
        assert ledger.spent_tx(ALICE.node_id, 0) == winner.tx_hash

    def test_order_independence_of_final_state(self):
        winner, loser = self._conflict_pair()
        forward = TokenLedger({ALICE.node_id: 100})
        forward.apply_or_conflict(winner)
        forward.apply_or_conflict(loser)
        backward = TokenLedger({ALICE.node_id: 100})
        backward.apply_or_conflict(loser)
        backward.apply_or_conflict(winner)
        for account in (ALICE.node_id, BOB.node_id):
            assert forward.balance(account) == backward.balance(account)
        assert (forward.spent_tx(ALICE.node_id, 0)
                == backward.spent_tx(ALICE.node_id, 0))

    def test_conflict_record_names_deterministic_winner(self):
        winner, loser = self._conflict_pair()
        ledger = TokenLedger({ALICE.node_id: 100})
        ledger.apply_or_conflict(loser)
        ledger.apply_or_conflict(winner)
        record = ledger.conflicts[0]
        assert record.accepted_tx == winner.tx_hash
        assert record.rejected_tx == loser.tx_hash

    def test_insufficient_is_void_not_applied(self):
        ledger = TokenLedger({ALICE.node_id: 5})
        tx = transfer_tx(ALICE, BOB.node_id, 10, 0)
        assert ledger.apply_or_conflict(tx) == "insufficient"
        assert ledger.balance(ALICE.node_id) == 5
        assert ledger.spent_tx(ALICE.node_id, 0) is None

    def test_forged_sender_raises(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        payload = TransferPayload(ALICE.node_id, BOB.node_id, 10, 0)
        forged = Transaction.create(
            BOB, kind=TransactionKind.TRANSFER, payload=payload.to_bytes(),
            timestamp=1.0, branch=b"\x01" * 32, trunk=b"\x01" * 32,
            difficulty=1,
        )
        with pytest.raises(MalformedPayloadError):
            ledger.apply_or_conflict(forged)


class TestTangleIntegration:
    def test_validator_blocks_conflicting_attach(self):
        genesis = Transaction.create_genesis(ALICE)
        ledger = TokenLedger({ALICE.node_id: 100})
        tangle = Tangle(genesis, validators=[ledger.validator])
        g = genesis.tx_hash
        first = transfer_tx(ALICE, BOB.node_id, 10, 0, parents=g)
        tangle.attach(first)
        ledger.apply(first)
        conflicting = transfer_tx(ALICE, ALICE.node_id, 10, 0,
                                  timestamp=2.0, parents=g)
        with pytest.raises(DoubleSpendError):
            tangle.attach(conflicting)
        assert conflicting.tx_hash not in tangle

    def test_validator_ignores_data_transactions(self):
        genesis = Transaction.create_genesis(ALICE)
        ledger = TokenLedger()
        tangle = Tangle(genesis, validators=[ledger.validator])
        tx = Transaction.create(
            ALICE, kind=TransactionKind.DATA, payload=b"reading",
            timestamp=1.0, branch=genesis.tx_hash, trunk=genesis.tx_hash,
            difficulty=1,
        )
        tangle.attach(tx)
        assert tx.tx_hash in tangle
