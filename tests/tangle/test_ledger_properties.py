"""Property-based tests on the token ledger.

Invariants under arbitrary interleavings of transfers and conflicting
double spends:

* total supply is conserved;
* balances never go negative;
* for every (sender, sequence) slot at most one transfer is in force,
  and it is always the lowest-hash candidate ever seen for that slot
  (the deterministic arbitration rule replicas rely on).
"""

import random

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.crypto.keys import KeyPair
from repro.tangle.ledger import TokenLedger, TransferPayload
from repro.tangle.transaction import Transaction, TransactionKind

ACCOUNT_KEYS = [
    KeyPair.generate(seed=f"ledger-prop-{i}".encode()) for i in range(3)
]
INITIAL_BALANCE = 100


def make_transfer(sender_keys, recipient_id, amount, sequence, salt):
    payload = TransferPayload(
        sender=sender_keys.node_id, recipient=recipient_id,
        amount=amount, sequence=sequence,
    )
    return Transaction.create(
        sender_keys, kind=TransactionKind.TRANSFER,
        payload=payload.to_bytes(), timestamp=float(salt),
        branch=b"\x01" * 32, trunk=b"\x01" * 32, difficulty=1,
    )


class LedgerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.ledger = TokenLedger({
            keys.node_id: INITIAL_BALANCE for keys in ACCOUNT_KEYS
        })
        self.rng = random.Random(0)
        # (sender index, sequence) -> list of candidate tx hashes seen
        self.candidates = {}
        self.salt = 0

    @rule(sender=st.integers(0, 2), recipient=st.integers(0, 2),
          amount=st.integers(1, 10))
    def fresh_transfer(self, sender, recipient, amount):
        keys = ACCOUNT_KEYS[sender]
        sequence = self.ledger.next_sequence(keys.node_id)
        self.salt += 1
        tx = make_transfer(keys, ACCOUNT_KEYS[recipient].node_id,
                           amount, sequence, self.salt)
        outcome = self.ledger.apply_or_conflict(tx, now=float(self.salt))
        assert outcome in ("applied", "insufficient", "conflict-rejected",
                           "conflict-replaced")
        if outcome in ("applied", "conflict-replaced"):
            self.candidates.setdefault((sender, sequence), []).append(tx.tx_hash)
        elif outcome == "conflict-rejected":
            self.candidates.setdefault((sender, sequence), []).append(tx.tx_hash)

    @rule(sender=st.integers(0, 2), recipient=st.integers(0, 2),
          amount=st.integers(1, 10))
    def double_spend_attempt(self, sender, recipient, amount):
        """Reuse an already-spent sequence with different content."""
        keys = ACCOUNT_KEYS[sender]
        spent_sequences = [
            seq for (s, seq) in self.candidates if s == sender
        ]
        if not spent_sequences:
            return
        sequence = self.rng.choice(spent_sequences)
        self.salt += 1
        tx = make_transfer(keys, ACCOUNT_KEYS[recipient].node_id,
                           amount, sequence, self.salt)
        outcome = self.ledger.apply_or_conflict(tx, now=float(self.salt))
        assert outcome in ("duplicate", "conflict-rejected",
                           "conflict-replaced")
        if outcome != "duplicate":
            self.candidates[(sender, sequence)].append(tx.tx_hash)

    @invariant()
    def supply_conserved(self):
        assert self.ledger.total_supply == INITIAL_BALANCE * len(ACCOUNT_KEYS)

    @invariant()
    def no_negative_balances(self):
        for keys in ACCOUNT_KEYS:
            assert self.ledger.balance(keys.node_id) >= 0

    @invariant()
    def slot_winner_is_a_seen_candidate(self):
        """Every occupied slot holds one of the transfers actually
        offered for it; with ample funding it is the lowest hash (the
        funding-constrained corner may keep a higher-hash incumbent)."""
        for (sender, sequence), candidates in self.candidates.items():
            keys = ACCOUNT_KEYS[sender]
            winner = self.ledger.spent_tx(keys.node_id, sequence)
            if winner is not None and candidates:
                assert winner in candidates or winner == min(candidates)


TestLedgerInvariants = LedgerMachine.TestCase
TestLedgerInvariants.settings = settings(
    max_examples=15, stateful_step_count=15, deadline=None,
)
