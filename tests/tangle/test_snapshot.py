"""Tests for repro.tangle.snapshot (local snapshots / pruning)."""

import pytest

from repro.crypto.keys import KeyPair
from repro.tangle.snapshot import TangleSnapshot, take_snapshot
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction
from repro.tangle.validation import crypto_validator, timestamp_validator

KEYS = KeyPair.generate(seed=b"snapshot-tests")


def grow_chain_tangle(length=20, spacing=5.0):
    """A linear tangle: tx_i approves tx_{i-1}, arrivals spaced apart."""
    genesis = Transaction.create_genesis(KEYS)
    tangle = Tangle(genesis)
    previous = genesis
    for i in range(length):
        t = (i + 1) * spacing
        tx = Transaction.create(
            KEYS, kind="data", payload=f"tx-{i}".encode(), timestamp=t,
            branch=previous.tx_hash, trunk=previous.tx_hash, difficulty=1,
        )
        tangle.attach(tx, arrival_time=t)
        previous = tx
    return tangle, previous


class TestTakeSnapshot:
    def test_prunes_old_buried_history(self):
        tangle, _ = grow_chain_tangle(length=20, spacing=5.0)
        snapshot = take_snapshot(tangle, now=100.0,
                                 keep_recent_seconds=30.0,
                                 min_weight_to_prune=5)
        assert snapshot.pruned_count > 0
        assert snapshot.retained_count < 20
        assert snapshot.pruned_count + snapshot.retained_count == 20

    def test_tips_always_retained(self):
        tangle, tip = grow_chain_tangle()
        snapshot = take_snapshot(tangle, now=1000.0,
                                 keep_recent_seconds=0.0)
        retained_hashes = {tx.tx_hash for tx, _ in snapshot.retained}
        assert tip.tx_hash in retained_hashes

    def test_recent_transactions_retained(self):
        tangle, _ = grow_chain_tangle(length=20, spacing=5.0)
        snapshot = take_snapshot(tangle, now=100.0,
                                 keep_recent_seconds=30.0)
        for tx, arrival in snapshot.retained:
            # Everything younger than the window must be present.
            assert arrival >= 0
        retained_arrivals = {arrival for _, arrival in snapshot.retained}
        assert any(arrival > 70.0 for arrival in retained_arrivals)

    def test_entry_points_cover_cut_surface(self):
        tangle, _ = grow_chain_tangle()
        snapshot = take_snapshot(tangle, now=1000.0,
                                 keep_recent_seconds=0.0,
                                 min_weight_to_prune=2)
        retained_hashes = {tx.tx_hash for tx, _ in snapshot.retained}
        retained_hashes.add(snapshot.genesis.tx_hash)
        entry_hashes = {h for h, _ in snapshot.entry_points}
        for tx, _ in snapshot.retained:
            for parent in (tx.branch, tx.trunk):
                assert parent in retained_hashes or parent in entry_hashes

    def test_parameter_validation(self):
        tangle, _ = grow_chain_tangle(length=3)
        with pytest.raises(ValueError):
            take_snapshot(tangle, now=10.0, keep_recent_seconds=-1.0)
        with pytest.raises(ValueError):
            take_snapshot(tangle, now=10.0, min_weight_to_prune=0)

    def test_nothing_pruned_when_window_covers_all(self):
        tangle, _ = grow_chain_tangle(length=10, spacing=1.0)
        snapshot = take_snapshot(tangle, now=10.0,
                                 keep_recent_seconds=100.0)
        assert snapshot.pruned_count == 0
        assert snapshot.retained_count == 10


class TestRestore:
    def test_restored_tangle_matches_retained_region(self):
        tangle, tip = grow_chain_tangle()
        snapshot = take_snapshot(tangle, now=1000.0,
                                 keep_recent_seconds=0.0,
                                 min_weight_to_prune=3)
        restored = tangle_restored = snapshot.restore()
        assert len(restored) == snapshot.retained_count + 1  # + genesis
        assert restored.tips() == tangle.tips()
        assert restored.is_entry_point(
            next(iter({h for h, _ in snapshot.entry_points})))

    def test_restored_tangle_keeps_growing(self):
        tangle, tip = grow_chain_tangle()
        snapshot = take_snapshot(tangle, now=1000.0,
                                 keep_recent_seconds=0.0,
                                 min_weight_to_prune=3)
        restored = snapshot.restore(validators=[crypto_validator(),
                                                timestamp_validator()])
        new_tx = Transaction.create(
            KEYS, kind="data", payload=b"after-restore", timestamp=101.0,
            branch=tip.tx_hash, trunk=tip.tx_hash, difficulty=1,
        )
        restored.attach(new_tx, arrival_time=101.0)
        assert new_tx.tx_hash in restored

    def test_new_transaction_may_reference_entry_point(self):
        tangle, _ = grow_chain_tangle()
        snapshot = take_snapshot(tangle, now=1000.0,
                                 keep_recent_seconds=0.0,
                                 min_weight_to_prune=3)
        restored = snapshot.restore()
        entry_hash = next(iter({h for h, _ in snapshot.entry_points}))
        lazy_like = Transaction.create(
            KEYS, kind="data", payload=b"refs-pruned", timestamp=102.0,
            branch=entry_hash, trunk=entry_hash, difficulty=1,
        )
        result = restored.attach(lazy_like, arrival_time=102.0)
        # Parent age is computed from the entry point's *recorded*
        # timestamp, exactly as if the transaction were still held.
        entry_timestamp = dict(snapshot.entry_points)[entry_hash]
        assert result.parent_ages[0] == pytest.approx(
            102.0 - entry_timestamp)

    def test_repeated_snapshots_chain(self):
        tangle, tip = grow_chain_tangle()
        first = take_snapshot(tangle, now=1000.0, keep_recent_seconds=0.0,
                              min_weight_to_prune=3)
        restored = first.restore()
        # Grow a bit, snapshot again: old entry points survive when
        # still referenced.
        previous = tip
        for i in range(5):
            t = 101.0 + i
            tx = Transaction.create(
                KEYS, kind="data", payload=f"second-{i}".encode(),
                timestamp=t, branch=previous.tx_hash, trunk=previous.tx_hash,
                difficulty=1,
            )
            restored.attach(tx, arrival_time=t)
            previous = tx
        second = take_snapshot(restored, now=2000.0,
                               keep_recent_seconds=0.0,
                               min_weight_to_prune=3)
        again = second.restore()
        assert again.tips() == restored.tips()

    def test_weight_consistency_after_restore(self):
        tangle, tip = grow_chain_tangle()
        snapshot = take_snapshot(tangle, now=1000.0, keep_recent_seconds=0.0,
                                 min_weight_to_prune=3)
        restored = snapshot.restore()
        assert restored.weight(tip.tx_hash) == tangle.weight(tip.tx_hash)


class TestSerialisation:
    def test_json_roundtrip(self):
        tangle, _ = grow_chain_tangle()
        snapshot = take_snapshot(tangle, now=1000.0, keep_recent_seconds=0.0,
                                 min_weight_to_prune=3)
        restored = TangleSnapshot.from_json(snapshot.to_json())
        assert restored.pruned_count == snapshot.pruned_count
        assert restored.entry_points == snapshot.entry_points
        assert ([tx.tx_hash for tx, _ in restored.retained]
                == [tx.tx_hash for tx, _ in snapshot.retained])
        # The roundtripped snapshot restores identically.
        assert restored.restore().tips() == snapshot.restore().tips()

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError):
            TangleSnapshot.from_json('{"nope": 1}')
        with pytest.raises(ValueError):
            TangleSnapshot.from_json("not json")
