"""Differential tests: optimized tangle vs the naive reference.

The optimized :class:`Tangle` layers several scale mechanisms over the
plain DAG definitions — batched lazy weight propagation, tip-pool and
height indexes, a cached depth map.  None of them may ever change an
answer.  These tests replay identical random growth schedules (seeded,
varied fan-in and tip pressure — see :mod:`tests.tangle.schedules`)
into every engine configuration and the from-scratch reference, and
assert ``weight()`` / ``height()`` / ``tips()`` / ``depth_from_tips()``
agree at interleaved probes and at the end.
"""

import random

import pytest

from repro.tangle.tangle import Tangle

from .reference import ReferenceTangle
from .schedules import random_growth_schedule, unsigned_tx

SEEDS = range(8)


def engine_variants(genesis):
    """Every weight-engine configuration behind the same Tangle API."""
    return {
        "eager(interval=1)": Tangle(genesis, weight_flush_interval=1),
        "batched(interval=7)": Tangle(genesis, weight_flush_interval=7),
        "batched(default)": Tangle(genesis),
        "exact-on-demand": Tangle(genesis, track_cumulative_weight=False),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_random_schedules_weight_height_tips_agree(seed):
    genesis, schedule = random_growth_schedule(seed)
    reference = ReferenceTangle(genesis)
    variants = engine_variants(genesis)
    probe_rng = random.Random(seed ^ 0xDEADBEEF)
    hashes = [genesis.tx_hash]

    for tx in schedule:
        reference.attach(tx)
        for tangle in variants.values():
            tangle.attach(tx, arrival_time=tx.timestamp)
        hashes.append(tx.tx_hash)
        # Interleaved reads: exercise flush-on-read mid-epoch, not just
        # the clean end-of-schedule state.
        if probe_rng.random() < 0.2:
            probe = probe_rng.choice(hashes)
            expected = reference.weight(probe)
            for name, tangle in variants.items():
                assert tangle.weight(probe) == expected, (name, seed)

    expected_tips = reference.tips()
    for name, tangle in variants.items():
        assert tangle.tips() == expected_tips, (name, seed)
        assert list(tangle.tip_sequence()) == expected_tips, (name, seed)
        for h in hashes:
            assert tangle.weight(h) == reference.weight(h), (name, seed)
            assert tangle.height(h) == reference.height(h), (name, seed)


@pytest.mark.parametrize("seed", (0, 3, 5))
def test_depth_from_tips_agrees(seed):
    genesis, schedule = random_growth_schedule(seed, length=60)
    reference = ReferenceTangle(genesis)
    tangle = Tangle(genesis)
    for tx in schedule:
        reference.attach(tx)
        tangle.attach(tx, arrival_time=tx.timestamp)
    for h in [genesis.tx_hash] + [tx.tx_hash for tx in schedule]:
        assert tangle.depth_from_tips(h) == reference.depth_from_tips(h), seed


def test_flush_interval_boundary_is_exact():
    """Weights read exactly at, just before and just after an epoch
    boundary must all be exact."""
    genesis, schedule = random_growth_schedule(11, length=40)
    reference = ReferenceTangle(genesis)
    tangle = Tangle(genesis, weight_flush_interval=8)
    for i, tx in enumerate(schedule):
        reference.attach(tx)
        tangle.attach(tx, arrival_time=tx.timestamp)
        assert tangle.pending_weight_count < 8
        if i % 8 in (6, 7, 0):
            assert tangle.weight(genesis.tx_hash) == reference.weight(genesis.tx_hash)
            assert tangle.pending_weight_count == 0


def test_explicit_flush_matches_incremental():
    """flush_weights() itself returns the flushed count and leaves the
    same state a sequence of eager updates would."""
    genesis, schedule = random_growth_schedule(13, length=30)
    lazy = Tangle(genesis, weight_flush_interval=10_000)
    eager = Tangle(genesis, weight_flush_interval=1)
    for tx in schedule:
        lazy.attach(tx, arrival_time=tx.timestamp)
        eager.attach(tx, arrival_time=tx.timestamp)
    assert lazy.pending_weight_count == len(schedule)
    assert lazy.flush_weights() == len(schedule)
    assert lazy.flush_weights() == 0
    for tx in schedule:
        assert lazy.weight(tx.tx_hash) == eager.weight(tx.tx_hash)


def test_deep_chain_diamonds_count_once():
    """A ladder of diamonds is the worst case for double counting: every
    batched mask traverses both sides of every diamond."""
    genesis, _ = random_growth_schedule(0, length=1)
    tangle = Tangle(genesis, weight_flush_interval=64)
    reference = ReferenceTangle(genesis)
    level = [genesis.tx_hash, genesis.tx_hash]
    clock, index = 0.0, 10_000
    for _ in range(20):
        new_level = []
        for _ in range(2):
            clock += 1.0
            index += 1
            tx = unsigned_tx(index, level[0], level[1], clock)
            tangle.attach(tx, arrival_time=clock)
            reference.attach(tx)
            new_level.append(tx.tx_hash)
        level = new_level
    assert tangle.weight(genesis.tx_hash) == reference.weight(genesis.tx_hash) == 41
