"""Tests for repro.tangle.wallet."""

import pytest

from repro.crypto.keys import KeyPair
from repro.tangle.ledger import TokenLedger
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction
from repro.tangle.wallet import InsufficientWalletFundsError, Wallet

ALICE = KeyPair.generate(seed=b"wallet-alice")
BOB = KeyPair.generate(seed=b"wallet-bob")
PARENT = b"\x01" * 32


def build(wallet, amount, *, timestamp=1.0):
    return wallet.build_transfer(
        BOB.node_id, amount, timestamp=timestamp,
        branch=PARENT, trunk=PARENT, difficulty=1,
    )


class TestBuildTransfer:
    def test_builds_valid_transaction(self):
        wallet = Wallet(ALICE, initial_balance=100)
        tx = build(wallet, 30)
        assert tx.verify_pow() and tx.verify_signature()
        ledger = TokenLedger({ALICE.node_id: 100})
        payload = ledger.apply(tx)
        assert payload.amount == 30
        assert payload.sequence == 0

    def test_sequences_increment(self):
        wallet = Wallet(ALICE, initial_balance=100)
        first = build(wallet, 10)
        second = build(wallet, 10, timestamp=2.0)
        ledger = TokenLedger({ALICE.node_id: 100})
        assert ledger.apply(first).sequence == 0
        assert ledger.apply(second).sequence == 1
        assert wallet.next_sequence == 2

    def test_funds_reserved_locally(self):
        wallet = Wallet(ALICE, initial_balance=50)
        build(wallet, 30)
        assert wallet.available_balance == 20
        with pytest.raises(InsufficientWalletFundsError):
            build(wallet, 21)
        # The failed attempt must not burn a sequence or funds.
        assert wallet.next_sequence == 1
        assert wallet.available_balance == 20

    def test_zero_amount_rejected(self):
        wallet = Wallet(ALICE, initial_balance=10)
        with pytest.raises(ValueError):
            build(wallet, 0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            Wallet(ALICE, initial_balance=-1)
        with pytest.raises(ValueError):
            Wallet(ALICE, initial_sequence=-1)


class TestDepositsAndReconcile:
    def test_deposit_increases_balance(self):
        wallet = Wallet(ALICE, initial_balance=0)
        wallet.notice_deposit(25)
        assert wallet.available_balance == 25
        with pytest.raises(ValueError):
            wallet.notice_deposit(0)

    def test_reconcile_adopts_ledger_balance(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        wallet = Wallet(ALICE, initial_balance=100)
        tx = build(wallet, 40)
        ledger.apply(tx)
        # Someone pays Alice out-of-band.
        ledger.credit(ALICE.node_id, 15)
        wallet.reconcile(ledger)
        assert wallet.available_balance == ledger.balance(ALICE.node_id) == 75

    def test_reconcile_never_rewinds_sequence(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        wallet = Wallet(ALICE, initial_balance=100)
        build(wallet, 10)  # built but never applied to the ledger
        assert wallet.next_sequence == 1
        wallet.reconcile(ledger)
        # Ledger has seen nothing, but the in-flight transfer's slot
        # must not be reused.
        assert wallet.next_sequence == 1

    def test_reconcile_fast_forwards_after_external_history(self):
        ledger = TokenLedger({ALICE.node_id: 100})
        primary = Wallet(ALICE, initial_balance=100)
        for i in range(3):
            ledger.apply(build(primary, 5, timestamp=float(i + 1)))
        # A fresh wallet instance (device rebooted) resyncs.
        rebooted = Wallet(ALICE)
        rebooted.reconcile(ledger)
        assert rebooted.next_sequence == 3
        assert rebooted.available_balance == 85


class TestEndToEndWithTangle:
    def test_wallet_transfers_attach_and_apply(self):
        genesis = Transaction.create_genesis(ALICE)
        ledger = TokenLedger({ALICE.node_id: 100})
        tangle = Tangle(genesis)
        wallet = Wallet(ALICE, initial_balance=100)
        parent = genesis.tx_hash
        for i in range(5):
            tx = wallet.build_transfer(
                BOB.node_id, 7, timestamp=float(i + 1),
                branch=parent, trunk=parent, difficulty=1,
            )
            tangle.attach(tx, arrival_time=float(i + 1))
            assert ledger.apply_or_conflict(tx) == "applied"
            parent = tx.tx_hash
        assert ledger.balance(BOB.node_id) == 35
        assert ledger.balance(ALICE.node_id) == 65
        assert wallet.available_balance == 65
