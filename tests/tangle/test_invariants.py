"""Structural invariants of the optimized tangle.

Three families:

* **tip-pool**: the tip set is exactly the no-approver set, however
  the DAG grew;
* **weights**: observed cumulative weights are monotone non-decreasing
  over time (batched flushing may defer propagation but must never let
  a read go backwards);
* **atomicity**: a failed ``attach`` — every validator-raise path and
  both unknown-parent paths — leaves the tangle byte-for-byte
  unmodified.
"""

import pytest

from repro.crypto.keys import KeyPair
from repro.tangle.errors import (
    DuplicateTransactionError,
    InvalidPowError,
    InvalidSignatureError,
    TimestampError,
    UnknownParentError,
    ValidationError,
)
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction
from repro.tangle.validation import crypto_validator, timestamp_validator

from .schedules import random_growth_schedule

KEYS = KeyPair.generate(seed=b"invariant-tests")


def state_fingerprint(tangle: Tangle) -> bytes:
    """A byte-exact digest of every observable and internal structure.

    Pending weight contributions are flushed first: flushing is a
    semantic no-op (reads always flush), and normalising makes two
    states comparable regardless of where their epochs ended.
    """
    tangle.flush_weights()
    parts = [
        repr(sorted(tangle._transactions)),
        repr(sorted((h, tuple(sorted(s))) for h, s in tangle._approvers.items())),
        repr(sorted(tangle._tips)),
        repr(sorted(tangle._arrival_time.items())),
        repr(sorted(tangle._height.items())),
        repr(sorted(tangle._cumulative_weight.items())),
        repr(tangle._order),
        repr(sorted(tangle._retired)),
        repr(sorted(tangle._entry_points.items())),
        repr(sorted(tangle._by_height.items())),
        repr(tangle._max_height),
    ]
    return b"\n".join(p.encode() for p in parts)


class TestTipPoolInvariant:
    @pytest.mark.parametrize("seed", range(5))
    def test_tips_are_exactly_the_unapproved(self, seed):
        genesis, schedule = random_growth_schedule(seed)
        tangle = Tangle(genesis)
        for tx in schedule:
            tangle.attach(tx, arrival_time=tx.timestamp)
            unapproved = sorted(
                h for h in tangle._transactions
                if not tangle.approvers(h)
            )
            assert tangle.tips() == unapproved

    def test_tip_metadata_matches_transactions(self):
        genesis, schedule = random_growth_schedule(2, length=30)
        tangle = Tangle(genesis)
        for tx in schedule:
            tangle.attach(tx, arrival_time=tx.timestamp)
        for info in tangle.tip_metadata():
            tx = tangle.get(info.tx_hash)
            assert info.issuer == tx.issuer.node_id
            assert info.arrival_time == tangle.arrival_time(info.tx_hash)
            assert info.height == tangle.height(info.tx_hash)
        assert tangle.newest_tip_arrival() == max(
            tangle.arrival_time(h) for h in tangle.tips()
        )


class TestWeightMonotonicity:
    @pytest.mark.parametrize("interval", (1, 5, 64))
    def test_weights_never_decrease(self, interval):
        genesis, schedule = random_growth_schedule(7, length=80)
        tangle = Tangle(genesis, weight_flush_interval=interval)
        last_seen = {}
        for i, tx in enumerate(schedule):
            tangle.attach(tx, arrival_time=tx.timestamp)
            if i % 9 == 0:  # probe at varied epoch offsets
                for h, previous in last_seen.items():
                    now = tangle.weight(h)
                    assert now >= previous, h
                    last_seen[h] = now
                last_seen[tx.tx_hash] = tangle.weight(tx.tx_hash)


class TestAttachAtomicity:
    """Every failure path must leave the tangle byte-for-byte intact."""

    @pytest.fixture()
    def tangle(self):
        genesis = Transaction.create_genesis(KEYS)
        tangle = Tangle(genesis, validators=[
            crypto_validator(min_difficulty=1),
            timestamp_validator(max_future_skew=5.0),
        ], weight_flush_interval=4)
        previous = genesis
        for i in range(6):
            tx = Transaction.create(
                KEYS, kind="data", payload=f"base-{i}".encode(),
                timestamp=float(i + 1), branch=previous.tx_hash,
                trunk=genesis.tx_hash, difficulty=1,
            )
            tangle.attach(tx, arrival_time=tx.timestamp)
            previous = tx
        self.head = previous
        return tangle

    def _assert_rejected_without_trace(self, tangle, tx, error, *,
                                       expect_absent=True):
        before = state_fingerprint(tangle)
        size = len(tangle)
        with pytest.raises(error):
            tangle.attach(tx, arrival_time=99.0)
        assert state_fingerprint(tangle) == before
        assert len(tangle) == size
        if expect_absent:
            assert tx.tx_hash not in tangle

    def test_duplicate_rejected_unmodified(self, tangle):
        self._assert_rejected_without_trace(
            tangle, self.head, DuplicateTransactionError,
            expect_absent=False)  # it is attached — exactly once

    def test_second_genesis_rejected_unmodified(self, tangle):
        second = Transaction.create_genesis(KEYS, payload=b"again")
        self._assert_rejected_without_trace(tangle, second, ValidationError)

    def test_unknown_branch_rejected_unmodified(self, tangle):
        orphan = Transaction.create(
            KEYS, kind="data", payload=b"orphan", timestamp=7.0,
            branch=b"\x13" * 32, trunk=self.head.tx_hash, difficulty=1,
        )
        self._assert_rejected_without_trace(tangle, orphan, UnknownParentError)

    def test_unknown_trunk_rejected_unmodified(self, tangle):
        orphan = Transaction.create(
            KEYS, kind="data", payload=b"orphan2", timestamp=7.0,
            branch=self.head.tx_hash, trunk=b"\x14" * 32, difficulty=1,
        )
        self._assert_rejected_without_trace(tangle, orphan, UnknownParentError)

    def test_pow_floor_rejected_unmodified(self, tangle):
        tangle.add_validator(crypto_validator(min_difficulty=8))
        weak = Transaction.create(
            KEYS, kind="data", payload=b"weak", timestamp=7.0,
            branch=self.head.tx_hash, trunk=self.head.tx_hash, difficulty=1,
        )
        self._assert_rejected_without_trace(tangle, weak, InvalidPowError)

    def test_bad_signature_rejected_unmodified(self, tangle):
        import dataclasses
        honest = Transaction.create(
            KEYS, kind="data", payload=b"forged", timestamp=7.0,
            branch=self.head.tx_hash, trunk=self.head.tx_hash, difficulty=1,
        )
        forged = dataclasses.replace(honest, signature=b"\x00" * 64)
        self._assert_rejected_without_trace(
            tangle, forged, InvalidSignatureError)

    def test_future_timestamp_rejected_unmodified(self, tangle):
        flying = Transaction.create(
            KEYS, kind="data", payload=b"future", timestamp=1e6,
            branch=self.head.tx_hash, trunk=self.head.tx_hash, difficulty=1,
        )
        self._assert_rejected_without_trace(tangle, flying, TimestampError)

    def test_custom_validator_raise_unmodified(self, tangle):
        def reject_everything(t, tx):
            raise ValidationError("nope")
        tangle.add_validator(reject_everything)
        fresh = Transaction.create(
            KEYS, kind="data", payload=b"doomed", timestamp=7.0,
            branch=self.head.tx_hash, trunk=self.head.tx_hash, difficulty=1,
        )
        self._assert_rejected_without_trace(tangle, fresh, ValidationError)
