"""Random DAG growth schedules shared by the tangle test harness.

A *schedule* is a deterministic function of a ``random.Random`` seed:
the same seed always produces the same transaction sequence, which is
what lets the differential tests replay one schedule into several
tangle implementations and demand identical answers.

Schedules vary two pressures:

* **tip pressure** — the probability a new transaction approves
  current tips (high = honest growth) versus arbitrary old
  transactions (low = heavy fan-in on the early DAG);
* **broom bursts** — occasional parasite-style bursts that pin many
  transactions onto one old anchor, stressing diamond counting and tip
  inflation.

Transactions are built unsigned (bare ``Tangle`` runs no validators):
Ed25519 signing costs ~5 ms each in the pure-Python stack, which would
dominate every property test for no extra coverage of the DAG code.
"""

import random
from typing import List, Tuple

from repro.crypto.keys import KeyPair
from repro.tangle.transaction import Transaction

from .reference import ReferenceTangle

KEYS = KeyPair.generate(seed=b"schedule-keys")


def unsigned_tx(index: int, branch: bytes, trunk: bytes,
                timestamp: float) -> Transaction:
    """A structurally valid, unsigned data transaction (cheap)."""
    return Transaction(
        kind="data", issuer=KEYS.public, payload=f"sched-{index}".encode(),
        timestamp=timestamp, branch=branch, trunk=trunk,
        difficulty=1, nonce=0, signature=b"",
    )


def random_growth_schedule(seed: int, *, length: int = None) -> Tuple[
        Transaction, List[Transaction]]:
    """Generate ``(genesis, transactions)`` for one random schedule.

    The schedule is grown against a :class:`ReferenceTangle` so parent
    choices (which depend on the evolving tip set) are defined by the
    *reference* semantics, never by the implementation under test.
    """
    rng = random.Random(seed)
    tip_pressure = rng.uniform(0.3, 0.95)
    burst_chance = rng.uniform(0.0, 0.15)
    n = length if length is not None else rng.randint(40, 120)

    genesis = Transaction.create_genesis(KEYS)
    reference = ReferenceTangle(genesis)
    hashes = [genesis.tx_hash]
    out: List[Transaction] = []
    clock = 0.0
    index = 0

    def emit(branch: bytes, trunk: bytes) -> None:
        nonlocal clock, index
        clock += 1.0
        index += 1
        tx = unsigned_tx(index, branch, trunk, clock)
        reference.attach(tx)
        hashes.append(tx.tx_hash)
        out.append(tx)

    while len(out) < n:
        if rng.random() < burst_chance:
            anchor = rng.choice(hashes)
            for _ in range(rng.randint(2, 6)):
                if len(out) >= n:
                    break
                emit(anchor, anchor)
            continue
        if rng.random() < tip_pressure:
            tips = reference.tips()
            branch, trunk = rng.choice(tips), rng.choice(tips)
        else:
            branch, trunk = rng.choice(hashes), rng.choice(hashes)
        emit(branch, trunk)
    return genesis, out
