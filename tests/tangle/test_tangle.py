"""Tests for repro.tangle.tangle (the DAG store)."""

import pytest

from repro.crypto.keys import KeyPair
from repro.tangle.errors import (
    DuplicateTransactionError,
    UnknownParentError,
    ValidationError,
)
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction

KEYS = KeyPair.generate(seed=b"tangle-tests")


def make_genesis():
    return Transaction.create_genesis(KEYS)


def child_of(parent_a, parent_b, *, payload=b"x", timestamp=1.0):
    return Transaction.create(
        KEYS, kind="data", payload=payload, timestamp=timestamp,
        branch=parent_a.tx_hash, trunk=parent_b.tx_hash, difficulty=1,
    )


@pytest.fixture()
def tangle():
    return Tangle(make_genesis())


class TestConstruction:
    def test_requires_genesis(self, tangle):
        non_genesis = child_of(tangle.genesis, tangle.genesis)
        with pytest.raises(ValueError):
            Tangle(non_genesis)

    def test_initial_state(self, tangle):
        assert len(tangle) == 1
        assert tangle.tip_count == 1
        assert tangle.tips() == [tangle.genesis.tx_hash]
        assert tangle.genesis.tx_hash in tangle


class TestAttach:
    def test_attach_updates_tips(self, tangle):
        tx = child_of(tangle.genesis, tangle.genesis)
        result = tangle.attach(tx, arrival_time=1.0)
        assert tangle.tips() == [tx.tx_hash]
        assert result.transaction is tx
        assert result.arrival_time == 1.0

    def test_attach_result_parent_flags(self, tangle):
        first = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(first, arrival_time=1.0)
        second = child_of(first, first, timestamp=2.0)
        result = tangle.attach(second, arrival_time=2.0)
        assert result.parents_were_tips == (True, True)
        third = child_of(first, first, payload=b"y", timestamp=3.0)
        result = tangle.attach(third, arrival_time=3.0)
        assert result.parents_were_tips == (False, False)
        assert result.parent_ages == (2.0, 2.0)

    def test_duplicate_rejected(self, tangle):
        tx = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(tx)
        with pytest.raises(DuplicateTransactionError):
            tangle.attach(tx)

    def test_unknown_parent_rejected(self, tangle):
        orphan_parent = child_of(tangle.genesis, tangle.genesis)
        grandchild = child_of(orphan_parent, orphan_parent)
        with pytest.raises(UnknownParentError):
            tangle.attach(grandchild)

    def test_second_genesis_rejected(self, tangle):
        with pytest.raises(ValidationError):
            tangle.attach(Transaction.create_genesis(KEYS, payload=b"again"))

    def test_failed_attach_leaves_tangle_unchanged(self, tangle):
        orphan_parent = child_of(tangle.genesis, tangle.genesis)
        grandchild = child_of(orphan_parent, orphan_parent)
        with pytest.raises(UnknownParentError):
            tangle.attach(grandchild)
        assert len(tangle) == 1
        assert grandchild.tx_hash not in tangle

    def test_custom_validator_runs(self, tangle):
        def reject_everything(t, tx):
            raise ValidationError("nope")
        tangle.add_validator(reject_everything)
        with pytest.raises(ValidationError):
            tangle.attach(child_of(tangle.genesis, tangle.genesis))

    def test_arrival_time_defaults_to_timestamp(self, tangle):
        tx = child_of(tangle.genesis, tangle.genesis, timestamp=4.5)
        result = tangle.attach(tx)
        assert result.arrival_time == 4.5
        assert tangle.arrival_time(tx.tx_hash) == 4.5


class TestWeights:
    def test_cumulative_weight_grows(self, tangle):
        genesis_hash = tangle.genesis.tx_hash
        assert tangle.weight(genesis_hash) == 1
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        assert tangle.weight(genesis_hash) == 2
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b)
        assert tangle.weight(genesis_hash) == 3
        assert tangle.weight(a.tx_hash) == 2
        assert tangle.weight(b.tx_hash) == 1

    def test_diamond_counts_once(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis, payload=b"a")
        tangle.attach(a)
        b = child_of(a, a, payload=b"b", timestamp=2.0)
        c = child_of(a, a, payload=b"c", timestamp=2.0)
        tangle.attach(b)
        tangle.attach(c)
        d = child_of(b, c, payload=b"d", timestamp=3.0)
        tangle.attach(d)
        # d approves b and c, both approve a: a's weight counts d once.
        assert tangle.weight(a.tx_hash) == 4

    def test_untracked_mode_computes_on_demand(self):
        genesis = make_genesis()
        tangle = Tangle(genesis, track_cumulative_weight=False)
        a = child_of(genesis, genesis)
        tangle.attach(a)
        assert tangle.weight(genesis.tx_hash) == 2
        assert tangle.weight(a.tx_hash) == 1

    def test_confirmation_threshold(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        assert tangle.is_confirmed(tangle.genesis.tx_hash, threshold=2)
        assert not tangle.is_confirmed(a.tx_hash, threshold=2)


class TestTopology:
    def test_heights(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = child_of(a, tangle.genesis, timestamp=2.0)
        tangle.attach(b)
        assert tangle.height(tangle.genesis.tx_hash) == 0
        assert tangle.height(a.tx_hash) == 1
        assert tangle.height(b.tx_hash) == 2

    def test_parents_and_approvers(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        assert tangle.parents(a.tx_hash) == (tangle.genesis.tx_hash,
                                             tangle.genesis.tx_hash)
        assert tangle.parents(tangle.genesis.tx_hash) == ()
        assert tangle.approvers(tangle.genesis.tx_hash) == {a.tx_hash}

    def test_ancestors(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b)
        assert tangle.ancestors(b.tx_hash) == {a.tx_hash,
                                               tangle.genesis.tx_hash}
        assert tangle.ancestors(tangle.genesis.tx_hash) == set()

    def test_depth_from_tips(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b)
        assert tangle.depth_from_tips(b.tx_hash) == 0
        assert tangle.depth_from_tips(a.tx_hash) == 1
        assert tangle.depth_from_tips(tangle.genesis.tx_hash) == 2

    def test_iteration_in_arrival_order(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a, arrival_time=1.0)
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b, arrival_time=2.0)
        order = [tx.tx_hash for tx in tangle]
        assert order == [tangle.genesis.tx_hash, a.tx_hash, b.tx_hash]

    def test_transactions_by_issuer(self, tangle):
        other = KeyPair.generate(seed=b"someone-else")
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = Transaction.create(
            other, kind="data", payload=b"o", timestamp=2.0,
            branch=a.tx_hash, trunk=a.tx_hash, difficulty=1,
        )
        tangle.attach(b)
        assert [t.tx_hash for t in tangle.transactions_by_issuer(other.node_id)] == [b.tx_hash]

    def test_get_unknown_raises(self, tangle):
        with pytest.raises(KeyError):
            tangle.get(b"\x00" * 32)


class TestDepthFromTipsAfterRetire:
    """Regression: a fully-buried transaction (all its unapproved
    descendants retired via ``retire_tip``, the pruned-approver case)
    used to raise ``UnknownParentError`` from ``depth_from_tips``.  It
    now reports the distance to the nearest retired burial boundary —
    a lower bound on its true depth."""

    def test_fully_buried_reports_boundary_distance(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b)
        tangle.retire_tip(b.tx_hash)
        assert tangle.tips() == []
        assert tangle.depth_from_tips(b.tx_hash) == 0
        assert tangle.depth_from_tips(a.tx_hash) == 1
        assert tangle.depth_from_tips(tangle.genesis.tx_hash) == 2

    def test_live_tip_wins_over_retired_boundary(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        retired = child_of(a, a, payload=b"r", timestamp=2.0)
        tangle.attach(retired)
        live = child_of(a, a, payload=b"l", timestamp=2.0)
        tangle.attach(live)
        tangle.retire_tip(retired.tx_hash)
        # a reaches the live tip at distance 1: exact semantics, not
        # the (equal) retired-boundary distance by accident — genesis
        # is further from the boundary than from the live tip.
        assert tangle.depth_from_tips(a.tx_hash) == 1
        assert tangle.depth_from_tips(tangle.genesis.tx_hash) == 2
        assert tangle.depth_from_tips(live.tx_hash) == 0

    def test_retired_tip_revives_on_new_approver(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        tangle.retire_tip(a.tx_hash)
        assert a.tx_hash in tangle.retired_tips()
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b)
        assert a.tx_hash not in tangle.retired_tips()
        assert tangle.depth_from_tips(a.tx_hash) == 1  # via live tip b

    def test_unknown_hash_still_raises(self, tangle):
        with pytest.raises(KeyError):
            tangle.depth_from_tips(b"\x07" * 32)


class TestScaleIndexes:
    """The tip-pool / height indexes behind tips(), the bounded walk
    and the lazy weight engine."""

    def test_tip_sequence_is_cached_and_sorted(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b)
        c = child_of(a, a, payload=b"c", timestamp=2.0)
        tangle.attach(c)
        first = tangle.tip_sequence()
        assert first is tangle.tip_sequence()  # cache hit, no re-sort
        assert list(first) == sorted([b.tx_hash, c.tx_hash])
        d = child_of(b, c, timestamp=3.0)
        tangle.attach(d)
        assert tangle.tip_sequence() == (d.tx_hash,)  # invalidated

    def test_tip_info_metadata(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a, arrival_time=4.0)
        info = tangle.tip_info(a.tx_hash)
        assert info.issuer == a.issuer.node_id
        assert info.arrival_time == 4.0
        assert info.height == 1
        with pytest.raises(KeyError):
            tangle.tip_info(tangle.genesis.tx_hash)  # no longer a tip

    def test_newest_tip_arrival_tracks_pool(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a, arrival_time=5.0)
        assert tangle.newest_tip_arrival() == 5.0
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b, arrival_time=2.0)
        # a was approved: the only tip arrived at 2.0, even though a
        # newer arrival exists elsewhere in the DAG.
        assert tangle.newest_tip_arrival() == 2.0

    def test_height_index(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = child_of(a, tangle.genesis, timestamp=2.0)
        tangle.attach(b)
        assert tangle.max_height == 2
        assert tangle.transactions_at_height(0) == (tangle.genesis.tx_hash,)
        assert tangle.transactions_at_height(1) == (a.tx_hash,)
        assert tangle.transactions_at_height(2) == (b.tx_hash,)
        assert tangle.transactions_at_height(3) == ()

    def test_lazy_weights_flush_on_read(self):
        tangle = Tangle(make_genesis(), weight_flush_interval=100)
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b)
        assert tangle.pending_weight_count == 2
        assert tangle.weight(tangle.genesis.tx_hash) == 3  # exact read
        assert tangle.pending_weight_count == 0

    def test_flush_interval_validation(self):
        with pytest.raises(ValueError):
            Tangle(make_genesis(), weight_flush_interval=0)
