"""Tests for repro.tangle.tangle (the DAG store)."""

import pytest

from repro.crypto.keys import KeyPair
from repro.tangle.errors import (
    DuplicateTransactionError,
    UnknownParentError,
    ValidationError,
)
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction

KEYS = KeyPair.generate(seed=b"tangle-tests")


def make_genesis():
    return Transaction.create_genesis(KEYS)


def child_of(parent_a, parent_b, *, payload=b"x", timestamp=1.0):
    return Transaction.create(
        KEYS, kind="data", payload=payload, timestamp=timestamp,
        branch=parent_a.tx_hash, trunk=parent_b.tx_hash, difficulty=1,
    )


@pytest.fixture()
def tangle():
    return Tangle(make_genesis())


class TestConstruction:
    def test_requires_genesis(self, tangle):
        non_genesis = child_of(tangle.genesis, tangle.genesis)
        with pytest.raises(ValueError):
            Tangle(non_genesis)

    def test_initial_state(self, tangle):
        assert len(tangle) == 1
        assert tangle.tip_count == 1
        assert tangle.tips() == [tangle.genesis.tx_hash]
        assert tangle.genesis.tx_hash in tangle


class TestAttach:
    def test_attach_updates_tips(self, tangle):
        tx = child_of(tangle.genesis, tangle.genesis)
        result = tangle.attach(tx, arrival_time=1.0)
        assert tangle.tips() == [tx.tx_hash]
        assert result.transaction is tx
        assert result.arrival_time == 1.0

    def test_attach_result_parent_flags(self, tangle):
        first = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(first, arrival_time=1.0)
        second = child_of(first, first, timestamp=2.0)
        result = tangle.attach(second, arrival_time=2.0)
        assert result.parents_were_tips == (True, True)
        third = child_of(first, first, payload=b"y", timestamp=3.0)
        result = tangle.attach(third, arrival_time=3.0)
        assert result.parents_were_tips == (False, False)
        assert result.parent_ages == (2.0, 2.0)

    def test_duplicate_rejected(self, tangle):
        tx = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(tx)
        with pytest.raises(DuplicateTransactionError):
            tangle.attach(tx)

    def test_unknown_parent_rejected(self, tangle):
        orphan_parent = child_of(tangle.genesis, tangle.genesis)
        grandchild = child_of(orphan_parent, orphan_parent)
        with pytest.raises(UnknownParentError):
            tangle.attach(grandchild)

    def test_second_genesis_rejected(self, tangle):
        with pytest.raises(ValidationError):
            tangle.attach(Transaction.create_genesis(KEYS, payload=b"again"))

    def test_failed_attach_leaves_tangle_unchanged(self, tangle):
        orphan_parent = child_of(tangle.genesis, tangle.genesis)
        grandchild = child_of(orphan_parent, orphan_parent)
        with pytest.raises(UnknownParentError):
            tangle.attach(grandchild)
        assert len(tangle) == 1
        assert grandchild.tx_hash not in tangle

    def test_custom_validator_runs(self, tangle):
        def reject_everything(t, tx):
            raise ValidationError("nope")
        tangle.add_validator(reject_everything)
        with pytest.raises(ValidationError):
            tangle.attach(child_of(tangle.genesis, tangle.genesis))

    def test_arrival_time_defaults_to_timestamp(self, tangle):
        tx = child_of(tangle.genesis, tangle.genesis, timestamp=4.5)
        result = tangle.attach(tx)
        assert result.arrival_time == 4.5
        assert tangle.arrival_time(tx.tx_hash) == 4.5


class TestWeights:
    def test_cumulative_weight_grows(self, tangle):
        genesis_hash = tangle.genesis.tx_hash
        assert tangle.weight(genesis_hash) == 1
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        assert tangle.weight(genesis_hash) == 2
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b)
        assert tangle.weight(genesis_hash) == 3
        assert tangle.weight(a.tx_hash) == 2
        assert tangle.weight(b.tx_hash) == 1

    def test_diamond_counts_once(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis, payload=b"a")
        tangle.attach(a)
        b = child_of(a, a, payload=b"b", timestamp=2.0)
        c = child_of(a, a, payload=b"c", timestamp=2.0)
        tangle.attach(b)
        tangle.attach(c)
        d = child_of(b, c, payload=b"d", timestamp=3.0)
        tangle.attach(d)
        # d approves b and c, both approve a: a's weight counts d once.
        assert tangle.weight(a.tx_hash) == 4

    def test_untracked_mode_computes_on_demand(self):
        genesis = make_genesis()
        tangle = Tangle(genesis, track_cumulative_weight=False)
        a = child_of(genesis, genesis)
        tangle.attach(a)
        assert tangle.weight(genesis.tx_hash) == 2
        assert tangle.weight(a.tx_hash) == 1

    def test_confirmation_threshold(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        assert tangle.is_confirmed(tangle.genesis.tx_hash, threshold=2)
        assert not tangle.is_confirmed(a.tx_hash, threshold=2)


class TestTopology:
    def test_heights(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = child_of(a, tangle.genesis, timestamp=2.0)
        tangle.attach(b)
        assert tangle.height(tangle.genesis.tx_hash) == 0
        assert tangle.height(a.tx_hash) == 1
        assert tangle.height(b.tx_hash) == 2

    def test_parents_and_approvers(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        assert tangle.parents(a.tx_hash) == (tangle.genesis.tx_hash,
                                             tangle.genesis.tx_hash)
        assert tangle.parents(tangle.genesis.tx_hash) == ()
        assert tangle.approvers(tangle.genesis.tx_hash) == {a.tx_hash}

    def test_ancestors(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b)
        assert tangle.ancestors(b.tx_hash) == {a.tx_hash,
                                               tangle.genesis.tx_hash}
        assert tangle.ancestors(tangle.genesis.tx_hash) == set()

    def test_depth_from_tips(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b)
        assert tangle.depth_from_tips(b.tx_hash) == 0
        assert tangle.depth_from_tips(a.tx_hash) == 1
        assert tangle.depth_from_tips(tangle.genesis.tx_hash) == 2

    def test_iteration_in_arrival_order(self, tangle):
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a, arrival_time=1.0)
        b = child_of(a, a, timestamp=2.0)
        tangle.attach(b, arrival_time=2.0)
        order = [tx.tx_hash for tx in tangle]
        assert order == [tangle.genesis.tx_hash, a.tx_hash, b.tx_hash]

    def test_transactions_by_issuer(self, tangle):
        other = KeyPair.generate(seed=b"someone-else")
        a = child_of(tangle.genesis, tangle.genesis)
        tangle.attach(a)
        b = Transaction.create(
            other, kind="data", payload=b"o", timestamp=2.0,
            branch=a.tx_hash, trunk=a.tx_hash, difficulty=1,
        )
        tangle.attach(b)
        assert [t.tx_hash for t in tangle.transactions_by_issuer(other.node_id)] == [b.tx_hash]

    def test_get_unknown_raises(self, tangle):
        with pytest.raises(KeyError):
            tangle.get(b"\x00" * 32)
