"""Property-based (hypothesis) tests on tangle invariants.

A stateful machine grows a tangle with random-but-valid operations and
checks the structural invariants after every step:

* tips are exactly the transactions with no approvers;
* cumulative weight equals 1 + |descendants| for every transaction;
* heights are consistent with parents;
* arrival order is topological (parents precede children).
"""

import random

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.crypto.keys import KeyPair
from repro.tangle.tangle import Tangle
from repro.tangle.tip_selection import UniformRandomTipSelector
from repro.tangle.transaction import Transaction

KEYS = KeyPair.generate(seed=b"property-tests")


class TangleMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.genesis = Transaction.create_genesis(KEYS)
        self.tangle = Tangle(self.genesis)
        self.rng = random.Random(0)
        self.clock = 0.0
        self.counter = 0

    def _new_transaction(self, branch, trunk):
        self.clock += 1.0
        self.counter += 1
        return Transaction.create(
            KEYS, kind="data", payload=f"p-{self.counter}".encode(),
            timestamp=self.clock, branch=branch, trunk=trunk, difficulty=1,
        )

    @rule()
    def attach_to_tips(self):
        selector = UniformRandomTipSelector()
        branch, trunk = selector.select(self.tangle, self.rng)
        tx = self._new_transaction(branch, trunk)
        self.tangle.attach(tx, arrival_time=self.clock)

    @rule(data=st.data())
    def attach_to_random_existing(self, data):
        """Approve arbitrary (possibly non-tip) transactions — legal,
        if lazy."""
        hashes = [tx.tx_hash for tx in self.tangle]
        branch = data.draw(st.sampled_from(hashes))
        trunk = data.draw(st.sampled_from(hashes))
        tx = self._new_transaction(branch, trunk)
        self.tangle.attach(tx, arrival_time=self.clock)

    @invariant()
    def tips_have_no_approvers(self):
        for tx in self.tangle:
            is_tip = self.tangle.is_tip(tx.tx_hash)
            has_approvers = bool(self.tangle.approvers(tx.tx_hash))
            assert is_tip == (not has_approvers)

    @invariant()
    def weight_is_one_plus_descendants(self):
        for tx in self.tangle:
            descendants = set()
            frontier = list(self.tangle.approvers(tx.tx_hash))
            while frontier:
                current = frontier.pop()
                if current in descendants:
                    continue
                descendants.add(current)
                frontier.extend(self.tangle.approvers(current))
            assert self.tangle.weight(tx.tx_hash) == 1 + len(descendants)

    @invariant()
    def heights_consistent(self):
        for tx in self.tangle:
            if tx.is_genesis:
                assert self.tangle.height(tx.tx_hash) == 0
                continue
            parent_heights = [
                self.tangle.height(p) for p in (tx.branch, tx.trunk)
            ]
            assert self.tangle.height(tx.tx_hash) == 1 + max(parent_heights)

    @invariant()
    def arrival_order_topological(self):
        seen = set()
        for tx in self.tangle:
            if not tx.is_genesis:
                assert tx.branch in seen and tx.trunk in seen
            seen.add(tx.tx_hash)


TestTangleInvariants = TangleMachine.TestCase
TestTangleInvariants.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None,
)
