"""Tests for repro.devices.clock."""

import pytest

from repro.devices.clock import SimulatedClock, WallClock


class TestSimulatedClock:
    def test_starts_at_given_time(self):
        assert SimulatedClock(5.0).now() == 5.0

    def test_defaults_to_zero(self):
        assert SimulatedClock().now() == 0.0

    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_advance_zero_allowed(self):
        clock = SimulatedClock(1.0)
        clock.advance(0.0)
        assert clock.now() == 1.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-0.1)

    def test_advance_to(self):
        clock = SimulatedClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_backwards_rejected(self):
        clock = SimulatedClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.9)

    def test_advance_to_same_time_allowed(self):
        clock = SimulatedClock(5.0)
        clock.advance_to(5.0)
        assert clock.now() == 5.0


class TestWallClock:
    def test_monotonic_and_near_zero_origin(self):
        clock = WallClock()
        first = clock.now()
        second = clock.now()
        assert 0.0 <= first <= second < 5.0
