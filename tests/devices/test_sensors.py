"""Tests for repro.devices.sensors."""

import pytest
from hypothesis import given, strategies as st

from repro.devices.sensors import (
    SENSOR_TYPES,
    HumiditySensor,
    MachineStatusSensor,
    PowerMeterSensor,
    SensorReading,
    TemperatureSensor,
    VibrationSensor,
    make_sensor,
)


class TestRegistry:
    def test_all_types_registered(self):
        assert set(SENSOR_TYPES) == {
            "temperature", "vibration", "humidity", "power", "machine-status",
        }

    def test_make_sensor(self):
        sensor = make_sensor("temperature", seed=1)
        assert isinstance(sensor, TemperatureSensor)

    def test_make_sensor_unknown_type(self):
        with pytest.raises(ValueError, match="unknown sensor type"):
            make_sensor("radar")


class TestDeterminism:
    @pytest.mark.parametrize("sensor_type", sorted(SENSOR_TYPES))
    def test_same_seed_same_stream(self, sensor_type):
        a = make_sensor(sensor_type, seed=7)
        b = make_sensor(sensor_type, seed=7)
        for t in range(10):
            assert a.read(float(t)) == b.read(float(t))

    def test_different_seeds_differ(self):
        a = VibrationSensor(seed=1)
        b = VibrationSensor(seed=2)
        assert [a.read(0.0).value] + [a.read(1.0).value] != \
               [b.read(0.0).value] + [b.read(1.0).value]

    def test_different_types_independent_streams(self):
        t = TemperatureSensor(seed=1).read(0.0)
        h = HumiditySensor(seed=1).read(0.0)
        assert t.value != h.value


class TestSensitivityFlags:
    def test_power_and_status_sensitive(self):
        assert PowerMeterSensor(seed=0).read(0.0).sensitive
        assert MachineStatusSensor(seed=0).read(0.0).sensitive

    def test_environmental_not_sensitive(self):
        assert not TemperatureSensor(seed=0).read(0.0).sensitive
        assert not VibrationSensor(seed=0).read(0.0).sensitive
        assert not HumiditySensor(seed=0).read(0.0).sensitive


class TestPhysicalPlausibility:
    def test_humidity_clipped(self):
        sensor = HumiditySensor(seed=3)
        values = [sensor.read(float(t)).value for t in range(500)]
        assert all(0.0 <= v <= 100.0 for v in values)

    def test_vibration_non_negative(self):
        sensor = VibrationSensor(seed=3)
        assert all(sensor.read(float(t)).value >= 0.0 for t in range(200))

    def test_power_duty_cycle_visible(self):
        sensor = PowerMeterSensor(seed=3)
        values = [sensor.read(float(t)).value for t in range(40)]
        idle = values[:20]
        load = values[20:40]
        assert max(idle) < min(load)

    def test_temperature_near_base(self):
        sensor = TemperatureSensor(seed=3, base=24.0, swing=3.0)
        values = [sensor.read(float(t)).value for t in range(100)]
        assert all(19.0 < v < 29.0 for v in values)

    def test_machine_status_codes(self):
        sensor = MachineStatusSensor(seed=3)
        assert all(sensor.read(float(t)).value in (0.0, 1.0, 2.0, 3.0)
                   for t in range(50))


class TestSensorReadingSerialisation:
    def test_roundtrip(self):
        reading = SensorReading("power", 123.456, "watts", 9.5, sensitive=True)
        assert SensorReading.from_bytes(reading.to_bytes()) == reading

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            SensorReading.from_bytes(b"not json")

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError):
            SensorReading.from_bytes(b'{"value": 1.0}')

    def test_reading_timestamps_flow_through(self):
        reading = TemperatureSensor(seed=0).read(42.5)
        assert reading.timestamp == 42.5

    @given(st.floats(allow_nan=False, allow_infinity=False),
           st.floats(allow_nan=False, allow_infinity=False))
    def test_property_roundtrip(self, value, timestamp):
        reading = SensorReading("t", value, "u", timestamp)
        assert SensorReading.from_bytes(reading.to_bytes()) == reading
