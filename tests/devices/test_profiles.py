"""Tests for repro.devices.profiles (the Raspberry Pi substitution)."""

import pytest

from repro.devices.profiles import (
    MALICIOUS_RIG,
    PC,
    PROFILES,
    RASPBERRY_PI_3B,
    DeviceProfile,
)


class TestBuiltinProfiles:
    def test_registry_contains_all(self):
        assert set(PROFILES) == {"raspberry-pi-3b", "pc", "malicious-rig"}
        assert PROFILES["pc"] is PC

    def test_pc_much_faster_than_pi(self):
        assert PC.hash_rate > 10 * RASPBERRY_PI_3B.hash_rate
        assert PC.aes_bytes_per_second > 10 * RASPBERRY_PI_3B.aes_bytes_per_second

    def test_attacker_close_to_iot_devices(self):
        # Threat model: attacker compute "close to IoT devices".
        assert MALICIOUS_RIG.hash_rate <= 4 * RASPBERRY_PI_3B.hash_rate

    def test_full_node_capability(self):
        assert PC.is_full_node_capable
        assert not RASPBERRY_PI_3B.is_full_node_capable

    def test_fig9_anchor_calibration(self):
        # DESIGN.md §4: the RPi profile is anchored on Fig. 9's 0.7 s
        # mean PoW at the initial difficulty 11.
        expected = RASPBERRY_PI_3B.expected_pow_seconds(11)
        assert 0.4 < expected < 1.0


class TestCostModel:
    def test_pow_seconds_linear_in_attempts(self):
        base = RASPBERRY_PI_3B.pow_seconds(0)
        one = RASPBERRY_PI_3B.pow_seconds(3000)
        assert base == RASPBERRY_PI_3B.pow_overhead_s
        assert one == pytest.approx(base + 1.0)

    def test_expected_pow_seconds_exponential(self):
        t10 = RASPBERRY_PI_3B.expected_pow_seconds(10)
        t13 = RASPBERRY_PI_3B.expected_pow_seconds(13)
        # Subtracting overhead the ratio must be exactly 8.
        overhead = RASPBERRY_PI_3B.pow_overhead_s
        assert (t13 - overhead) / (t10 - overhead) == pytest.approx(8.0)

    def test_aes_seconds(self):
        assert RASPBERRY_PI_3B.aes_seconds(0) == 0.0
        assert RASPBERRY_PI_3B.aes_seconds(700_000) == pytest.approx(1.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            RASPBERRY_PI_3B.pow_seconds(-1)
        with pytest.raises(ValueError):
            RASPBERRY_PI_3B.expected_pow_seconds(-1)
        with pytest.raises(ValueError):
            RASPBERRY_PI_3B.aes_seconds(-1)


class TestValidation:
    def _profile(self, **overrides):
        fields = dict(
            name="x", hash_rate=1.0, pow_overhead_s=0.0,
            aes_bytes_per_second=1.0, signature_seconds=0.0,
            is_full_node_capable=False,
        )
        fields.update(overrides)
        return DeviceProfile(**fields)

    def test_valid_profile_constructs(self):
        assert self._profile().name == "x"

    @pytest.mark.parametrize("field,value", [
        ("hash_rate", 0.0),
        ("hash_rate", -1.0),
        ("pow_overhead_s", -0.1),
        ("aes_bytes_per_second", 0.0),
        ("signature_seconds", -0.1),
    ])
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            self._profile(**{field: value})

    def test_frozen(self):
        with pytest.raises(Exception):
            PC.hash_rate = 1.0
