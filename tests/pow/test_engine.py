"""Tests for repro.pow.engine (device-charged solving)."""

import random

import pytest

from repro.devices.clock import SimulatedClock
from repro.devices.profiles import PC, RASPBERRY_PI_3B
from repro.pow.engine import PowEngine
from repro.pow.hashcash import verify


class TestRealSolving:
    def test_clock_advances_by_elapsed(self):
        clock = SimulatedClock()
        engine = PowEngine(RASPBERRY_PI_3B, clock, rng=random.Random(1))
        result = engine.solve(b"c", 4)
        assert clock.now() == pytest.approx(result.elapsed_seconds)
        assert result.finished_at == pytest.approx(result.elapsed_seconds)

    def test_elapsed_matches_profile(self):
        engine = PowEngine(PC, SimulatedClock(), rng=random.Random(1))
        result = engine.solve(b"c", 4)
        assert result.elapsed_seconds == pytest.approx(
            PC.pow_seconds(result.proof.attempts)
        )

    def test_real_proof_verifies(self):
        engine = PowEngine(PC, SimulatedClock(), rng=random.Random(2))
        result = engine.solve(b"challenge", 8)
        assert not result.proof.simulated
        assert verify(b"challenge", result.proof.nonce, 8)

    def test_no_advance_mode(self):
        clock = SimulatedClock()
        engine = PowEngine(PC, clock, rng=random.Random(1), advance_clock=False)
        result = engine.solve(b"c", 4)
        assert clock.now() == 0.0
        assert result.elapsed_seconds > 0.0


class TestSampledSolving:
    def test_above_limit_is_sampled(self):
        engine = PowEngine(PC, SimulatedClock(), rng=random.Random(3),
                           real_difficulty_limit=6)
        result = engine.solve(b"c", 7)
        assert result.proof.simulated
        assert result.proof.attempts >= 1

    def test_below_limit_is_real(self):
        engine = PowEngine(PC, SimulatedClock(), rng=random.Random(3),
                           real_difficulty_limit=6)
        assert not engine.solve(b"c", 6).proof.simulated

    def test_sampled_still_charges_time(self):
        clock = SimulatedClock()
        engine = PowEngine(RASPBERRY_PI_3B, clock, rng=random.Random(4),
                           real_difficulty_limit=1)
        result = engine.solve(b"c", 20)
        assert clock.now() == pytest.approx(result.elapsed_seconds)
        # 2^20 attempts at 3000 H/s is minutes of simulated time.
        assert result.elapsed_seconds > 60.0


class TestAccounting:
    def test_counters_accumulate(self):
        engine = PowEngine(PC, SimulatedClock(), rng=random.Random(5))
        for _ in range(3):
            engine.solve(b"c", 3)
        assert engine.solve_count == 3
        assert engine.total_attempts >= 3
        assert engine.total_seconds > 0

    def test_mean_seconds(self):
        engine = PowEngine(PC, SimulatedClock(), rng=random.Random(6))
        assert engine.mean_seconds_per_solve == 0.0
        engine.solve(b"c", 3)
        assert engine.mean_seconds_per_solve == pytest.approx(engine.total_seconds)

    def test_deterministic_with_seeded_rng(self):
        def run():
            engine = PowEngine(PC, SimulatedClock(), rng=random.Random(9))
            return [engine.solve(b"c", 5).proof.nonce for _ in range(3)]
        assert run() == run()

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            PowEngine(PC, real_difficulty_limit=-1)

    def test_default_clock_created(self):
        engine = PowEngine(PC, rng=random.Random(1))
        engine.solve(b"c", 2)
        assert engine.clock.now() > 0
