"""Tests for repro.pow.hashcash (Eqn. 6)."""

import random
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import double_sha256, leading_zero_bits
from repro.pow.hashcash import (
    MAX_DIFFICULTY,
    MIN_DIFFICULTY,
    NONCE_SIZE,
    pow_challenge,
    sample_attempts,
    solve,
    verify,
)


class TestChallenge:
    def test_binds_both_parents(self):
        body = b"b" * 32
        a = pow_challenge(b"\x01" * 32, b"\x02" * 32, body)
        b = pow_challenge(b"\x03" * 32, b"\x02" * 32, body)
        c = pow_challenge(b"\x01" * 32, b"\x04" * 32, body)
        assert len({a, b, c}) == 3

    def test_binds_body(self):
        parents = (b"\x01" * 32, b"\x02" * 32)
        assert (pow_challenge(*parents, b"x" * 32)
                != pow_challenge(*parents, b"y" * 32))

    def test_parent_order_matters(self):
        body = b"b" * 32
        assert (pow_challenge(b"\x01" * 32, b"\x02" * 32, body)
                != pow_challenge(b"\x02" * 32, b"\x01" * 32, body))


class TestSolve:
    def test_solution_meets_difficulty(self):
        proof = solve(b"challenge", 8)
        digest = double_sha256(b"challenge" + proof.nonce.to_bytes(NONCE_SIZE, "big"))
        assert leading_zero_bits(digest) >= 8

    def test_solution_verifies(self):
        proof = solve(b"challenge", 6)
        assert verify(b"challenge", proof.nonce, 6)

    def test_attempts_positive(self):
        assert solve(b"c", 1).attempts >= 1

    def test_start_nonce_respected(self):
        proof = solve(b"c", 4, start_nonce=1000)
        assert proof.nonce >= 1000

    def test_start_nonce_wraps_at_64_bits(self):
        # Regression: a start near 2**64 must wrap the *iteration* onto
        # 0, 1, 2, ... — not just the digest input — so the returned
        # nonce is always a real 64-bit value, the attempt count keeps
        # matching the number of distinct nonces tried, and the solution
        # verifies under the same wire-range check all validators apply.
        proof = solve(b"wrap", 4, start_nonce=2 ** 64 - 2)
        assert 0 <= proof.nonce < 2 ** 64
        assert verify(b"wrap", proof.nonce, 4)
        # The scan order is 2**64-2, 2**64-1, 0, 1, ...: the attempt
        # count must equal the position in exactly that sequence.
        sequence = [2 ** 64 - 2, 2 ** 64 - 1] + list(range(proof.attempts))
        assert sequence[proof.attempts - 1] == proof.nonce
        # The wrapped solve finds the same solution a fresh scan from 0
        # would (unless one of the two pre-wrap nonces happened to win).
        if proof.nonce not in (2 ** 64 - 2, 2 ** 64 - 1):
            assert proof.nonce == solve(b"wrap", 4).nonce

    def test_start_nonce_already_wrapped_equivalent(self):
        # start_nonce == 2**64 is the same scan as start_nonce == 0.
        a = solve(b"c", 4, start_nonce=2 ** 64)
        b = solve(b"c", 4, start_nonce=0)
        assert (a.nonce, a.attempts) == (b.nonce, b.attempts)

    def test_difficulty_bounds(self):
        with pytest.raises(ValueError):
            solve(b"c", 0)
        with pytest.raises(ValueError):
            solve(b"c", MAX_DIFFICULTY + 1)

    def test_max_attempts_enforced(self):
        with pytest.raises(RuntimeError):
            solve(b"c", 30, max_attempts=5)

    def test_not_simulated(self):
        assert not solve(b"c", 2).simulated

    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=20, deadline=None)
    def test_property_solve_then_verify(self, challenge):
        proof = solve(challenge, 4)
        assert verify(challenge, proof.nonce, 4)


class TestVerify:
    def test_rejects_wrong_nonce(self):
        proof = solve(b"c", 10)
        assert not verify(b"c", proof.nonce + 1, 10) or verify(b"c", proof.nonce + 1, 10) is True
        # A specific always-wrong case: nonce whose digest has no zeros.
        bad = next(
            n for n in range(10_000)
            if leading_zero_bits(double_sha256(b"c" + n.to_bytes(8, "big"))) < 10
        )
        assert not verify(b"c", bad, 10)

    def test_rejects_wrong_challenge(self):
        proof = solve(b"challenge-a", 10)
        bad = not verify(b"challenge-b", proof.nonce, 10)
        # The same nonce may accidentally solve another challenge at tiny
        # difficulty, but at 10 bits that chance is ~0.1%; assert it here.
        assert bad

    def test_higher_difficulty_harder(self):
        proof = solve(b"c", 4)
        assert verify(b"c", proof.nonce, 4)
        assert verify(b"c", proof.nonce, 1)  # weaker target also met

    def test_out_of_range_difficulty_false(self):
        assert not verify(b"c", 0, 0)
        assert not verify(b"c", 0, MAX_DIFFICULTY + 1)

    def test_out_of_range_nonce_false(self):
        assert not verify(b"c", -1, 4)
        assert not verify(b"c", 2 ** 64, 4)

    def test_min_max_constants(self):
        assert MIN_DIFFICULTY == 1
        assert MAX_DIFFICULTY == 256


class TestSampleAttempts:
    def test_mean_close_to_expected(self):
        rng = random.Random(7)
        difficulty = 6  # expected 64 attempts
        samples = [sample_attempts(difficulty, rng) for _ in range(4000)]
        assert 0.8 * 64 < statistics.mean(samples) < 1.2 * 64

    def test_always_at_least_one(self):
        rng = random.Random(1)
        assert all(sample_attempts(1, rng) >= 1 for _ in range(100))

    def test_difficulty_validated(self):
        with pytest.raises(ValueError):
            sample_attempts(0, random.Random(1))

    def test_deterministic_given_rng_state(self):
        assert ([sample_attempts(8, random.Random(3)) for _ in range(5)]
                == [sample_attempts(8, random.Random(3)) for _ in range(5)])

    @pytest.mark.parametrize("difficulty", [53, 64, MAX_DIFFICULTY])
    def test_extreme_difficulties_do_not_divide_by_zero(self, difficulty):
        # Regression: log(1 - 2**-D) rounds to log(1.0) == 0.0 for
        # D >= 53 and raised ZeroDivisionError; log1p(-p) keeps the
        # denominator finite all the way to MAX_DIFFICULTY.
        rng = random.Random(5)
        for _ in range(20):
            attempts = sample_attempts(difficulty, rng)
            assert attempts >= 1

    def test_extreme_difficulty_magnitude(self):
        # At difficulty 53 the expected attempt count is 2**53; the
        # sampled values must live on that scale, not collapse to 1.
        rng = random.Random(9)
        samples = [sample_attempts(53, rng) for _ in range(200)]
        assert statistics.mean(samples) > 2 ** 50

    def test_large_difficulty_scales(self):
        rng = random.Random(11)
        small = statistics.mean(sample_attempts(4, rng) for _ in range(2000))
        large = statistics.mean(sample_attempts(10, rng) for _ in range(2000))
        assert large > 10 * small  # 2^10/2^4 = 64x expected
