"""Shared fixtures.

Key pairs are session-scoped: Ed25519/X25519 derivation costs a few
milliseconds each, and hundreds of tests want "some identity" rather
than "a fresh identity".
"""

import random

import pytest

from repro.crypto.keys import KeyPair


@pytest.fixture(scope="session")
def manager_keys():
    return KeyPair.generate(seed=b"test-manager")


@pytest.fixture(scope="session")
def device_keys():
    return KeyPair.generate(seed=b"test-device")


@pytest.fixture(scope="session")
def other_keys():
    return KeyPair.generate(seed=b"test-other")


@pytest.fixture()
def rng():
    return random.Random(12345)
