"""Tests for repro.chain.block."""

import pytest

from repro.crypto.hashing import merkle_root
from repro.crypto.keys import KeyPair
from repro.chain.block import GENESIS_PREV_HASH, Block
from repro.tangle.transaction import Transaction, ZERO_HASH

MINER = KeyPair.generate(seed=b"block-miner")
SENDER = KeyPair.generate(seed=b"block-sender")


def data_tx(payload, timestamp=0.0):
    return Transaction.create(
        SENDER, kind="data", payload=payload, timestamp=timestamp,
        branch=ZERO_HASH, trunk=ZERO_HASH, difficulty=1,
    )


class TestGenesisBlock:
    def test_mine_genesis(self):
        genesis = Block.mine_genesis(MINER)
        assert genesis.is_genesis
        assert genesis.height == 0
        assert genesis.prev_hash == GENESIS_PREV_HASH
        assert genesis.verify_pow()

    def test_non_genesis_not_flagged(self):
        genesis = Block.mine_genesis(MINER)
        child = Block.mine(
            MINER, prev_hash=genesis.block_hash, height=1,
            timestamp=1.0, difficulty=2,
        )
        assert not child.is_genesis


class TestMining:
    def test_mined_block_verifies(self):
        genesis = Block.mine_genesis(MINER)
        block = Block.mine(
            MINER, prev_hash=genesis.block_hash, height=1, timestamp=1.0,
            difficulty=6, transactions=(data_tx(b"a"), data_tx(b"b")),
        )
        assert block.verify_pow()
        assert len(block.transactions) == 2

    def test_merkle_root_matches_transactions(self):
        txs = (data_tx(b"a"), data_tx(b"b"), data_tx(b"c"))
        block = Block.mine(
            MINER, prev_hash=GENESIS_PREV_HASH, height=0, timestamp=0.0,
            difficulty=2, transactions=txs,
        )
        assert block.merkle_root == merkle_root([t.to_bytes() for t in txs])

    def test_empty_body_merkle_root(self):
        block = Block.mine_genesis(MINER)
        assert block.merkle_root == b"\x00" * 32

    def test_work_is_exponential(self):
        a = Block.mine(MINER, prev_hash=GENESIS_PREV_HASH, height=0,
                       timestamp=0.0, difficulty=3)
        b = Block.mine(MINER, prev_hash=GENESIS_PREV_HASH, height=0,
                       timestamp=0.0, difficulty=5)
        assert b.work == 4 * a.work

    def test_explicit_nonce(self):
        mined = Block.mine(MINER, prev_hash=GENESIS_PREV_HASH, height=0,
                           timestamp=0.0, difficulty=4)
        rebuilt = Block.mine(
            MINER, prev_hash=GENESIS_PREV_HASH, height=0, timestamp=0.0,
            difficulty=4, nonce=mined.nonce,
        )
        assert rebuilt.block_hash == mined.block_hash


class TestHeaderIntegrity:
    def test_header_covers_transactions(self):
        a = Block.mine(MINER, prev_hash=GENESIS_PREV_HASH, height=0,
                       timestamp=0.0, difficulty=2,
                       transactions=(data_tx(b"a"),))
        b = Block(
            prev_hash=a.prev_hash, height=a.height, timestamp=a.timestamp,
            difficulty=a.difficulty, miner=a.miner,
            transactions=(data_tx(b"b"),), nonce=a.nonce,
        )
        assert a.header_digest != b.header_digest

    def test_tampered_timestamp_breaks_pow(self):
        block = Block.mine(MINER, prev_hash=GENESIS_PREV_HASH, height=0,
                           timestamp=0.0, difficulty=10)
        tampered = Block(
            prev_hash=block.prev_hash, height=block.height, timestamp=99.0,
            difficulty=block.difficulty, miner=block.miner,
            transactions=block.transactions, nonce=block.nonce,
        )
        assert not tampered.verify_pow()

    def test_validation(self):
        with pytest.raises(ValueError):
            Block(prev_hash=b"short", height=0, timestamp=0.0, difficulty=1,
                  miner=MINER.public, transactions=(), nonce=0)
        with pytest.raises(ValueError):
            Block(prev_hash=GENESIS_PREV_HASH, height=-1, timestamp=0.0,
                  difficulty=1, miner=MINER.public, transactions=(), nonce=0)
        with pytest.raises(ValueError):
            Block(prev_hash=GENESIS_PREV_HASH, height=0, timestamp=0.0,
                  difficulty=0, miner=MINER.public, transactions=(), nonce=0)
