"""Tests for repro.chain.retarget (difficulty adjustment)."""

import random

import pytest

from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.chain.miner import Miner
from repro.chain.retarget import RetargetingSchedule, retarget_difficulty
from repro.crypto.keys import KeyPair
from repro.devices.clock import SimulatedClock
from repro.devices.profiles import PC
from repro.pow.engine import PowEngine
from repro.tangle.transaction import Transaction, ZERO_HASH

MINER = KeyPair.generate(seed=b"retarget-tests")


class TestRetargetStep:
    def test_on_target_no_change(self):
        assert retarget_difficulty(10, observed_interval=10.0,
                                   target_interval=10.0) == 10

    def test_too_fast_raises_difficulty(self):
        assert retarget_difficulty(10, observed_interval=5.0,
                                   target_interval=10.0) == 11
        assert retarget_difficulty(10, observed_interval=2.5,
                                   target_interval=10.0) == 12

    def test_too_slow_lowers_difficulty(self):
        assert retarget_difficulty(10, observed_interval=20.0,
                                   target_interval=10.0) == 9

    def test_step_clamped(self):
        assert retarget_difficulty(10, observed_interval=0.01,
                                   target_interval=10.0,
                                   max_step_bits=2) == 12
        assert retarget_difficulty(10, observed_interval=10_000.0,
                                   target_interval=10.0,
                                   max_step_bits=2) == 8

    def test_bounds_respected(self):
        assert retarget_difficulty(1, observed_interval=100.0,
                                   target_interval=1.0) == 1
        assert retarget_difficulty(32, observed_interval=0.01,
                                   target_interval=10.0,
                                   max_difficulty=32) == 32

    @pytest.mark.parametrize("kwargs", [
        {"observed_interval": 0.0, "target_interval": 1.0},
        {"observed_interval": 1.0, "target_interval": 0.0},
        {"observed_interval": 1.0, "target_interval": 1.0, "max_step_bits": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            retarget_difficulty(10, **kwargs)


class TestRetargetingSchedule:
    def _chain_with_intervals(self, intervals, difficulty=8):
        chain = Blockchain(Block.mine_genesis(MINER))
        t = 0.0
        parent = chain.genesis
        for interval in intervals:
            t += interval
            block = Block.mine(
                MINER, prev_hash=parent.block_hash,
                height=parent.height + 1, timestamp=t,
                difficulty=difficulty,
            )
            chain.add_block(block)
            parent = block
        return chain

    def test_genesis_only_keeps_difficulty(self):
        chain = Blockchain(Block.mine_genesis(MINER))
        schedule = RetargetingSchedule(target_interval=10.0)
        assert schedule.next_difficulty(chain) == chain.genesis.difficulty

    def test_fast_blocks_raise(self):
        chain = self._chain_with_intervals([1.0] * 8)
        schedule = RetargetingSchedule(target_interval=10.0, window=8)
        assert schedule.next_difficulty(chain) == 10  # +2 clamped

    def test_slow_blocks_lower(self):
        chain = self._chain_with_intervals([40.0] * 8)
        schedule = RetargetingSchedule(target_interval=10.0, window=8)
        assert schedule.next_difficulty(chain) == 6

    def test_on_target_stable(self):
        chain = self._chain_with_intervals([10.0] * 8)
        schedule = RetargetingSchedule(target_interval=10.0, window=8)
        assert schedule.next_difficulty(chain) == 8

    def test_degenerate_timestamps_raise(self):
        chain = self._chain_with_intervals([0.0] * 4)
        schedule = RetargetingSchedule(target_interval=10.0)
        assert schedule.next_difficulty(chain) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            RetargetingSchedule(target_interval=0.0)
        with pytest.raises(ValueError):
            RetargetingSchedule(target_interval=1.0, window=0)

    def test_converges_with_live_miner(self):
        """End to end: a miner retargeting every block settles near the
        target interval for its hash rate."""
        chain = Blockchain(Block.mine_genesis(MINER))
        clock = SimulatedClock()
        engine = PowEngine(PC, clock, rng=random.Random(4))
        # max_step_bits=1 damps the controller: a short window mixes
        # intervals mined at different difficulties, and ±2-bit steps
        # overshoot and oscillate around the fixed point.
        schedule = RetargetingSchedule(target_interval=0.5, window=6,
                                       max_step_bits=1, max_difficulty=24)
        miner = Miner(MINER, chain, engine, block_difficulty=4)
        sender = KeyPair.generate(seed=b"retarget-sender")
        difficulties = []
        for i in range(40):
            miner.submit(Transaction.create(
                sender, kind="data", payload=f"{i}".encode(), timestamp=0.0,
                branch=ZERO_HASH, trunk=ZERO_HASH, difficulty=1,
            ))
            miner.block_difficulty = schedule.next_difficulty(chain)
            miner.mine_next_block()
            difficulties.append(miner.block_difficulty)
        # Expected fixed point for 0.5 s blocks at the PC hash rate:
        # 2^D / 300k = 0.5 -> D ~ 17.2.  Assert the converged mean.
        steady = difficulties[-12:]
        mean = sum(steady) / len(steady)
        assert 14.0 <= mean <= 20.0
