"""Tests for repro.chain.blockchain (longest/heaviest-chain consensus)."""

import pytest

from repro.crypto.keys import KeyPair
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.tangle.errors import (
    DuplicateTransactionError,
    InvalidPowError,
    TimestampError,
    UnknownParentError,
    ValidationError,
)
from repro.tangle.transaction import Transaction, ZERO_HASH

MINER = KeyPair.generate(seed=b"chain-miner")
SENDER = KeyPair.generate(seed=b"chain-sender")


def extend(chain, parent, *, timestamp=None, difficulty=4, payloads=()):
    txs = tuple(
        Transaction.create(
            SENDER, kind="data", payload=p, timestamp=parent.timestamp,
            branch=ZERO_HASH, trunk=ZERO_HASH, difficulty=1,
        )
        for p in payloads
    )
    block = Block.mine(
        MINER, prev_hash=parent.block_hash, height=parent.height + 1,
        timestamp=timestamp if timestamp is not None else parent.timestamp + 1.0,
        difficulty=difficulty, transactions=txs,
    )
    chain.add_block(block)
    return block


@pytest.fixture()
def chain():
    return Blockchain(Block.mine_genesis(MINER))


class TestGrowth:
    def test_linear_growth(self, chain):
        tip = chain.genesis
        for _ in range(3):
            tip = extend(chain, tip)
        assert chain.height == 3
        assert chain.best_tip.block_hash == tip.block_hash
        assert len(chain) == 4

    def test_main_chain_order(self, chain):
        a = extend(chain, chain.genesis)
        b = extend(chain, a)
        main = chain.main_chain()
        assert [blk.height for blk in main] == [0, 1, 2]
        assert main[-1].block_hash == b.block_hash

    def test_add_returns_main_flag(self, chain):
        a = Block.mine(MINER, prev_hash=chain.genesis.block_hash, height=1,
                       timestamp=1.0, difficulty=4)
        assert chain.add_block(a) is True


class TestValidation:
    def test_duplicate_rejected(self, chain):
        a = extend(chain, chain.genesis)
        with pytest.raises(DuplicateTransactionError):
            chain.add_block(a)

    def test_unknown_parent_rejected(self, chain):
        stray = Block.mine(MINER, prev_hash=b"\x07" * 32, height=1,
                           timestamp=1.0, difficulty=4)
        with pytest.raises(UnknownParentError):
            chain.add_block(stray)

    def test_wrong_height_rejected(self, chain):
        bad = Block.mine(MINER, prev_hash=chain.genesis.block_hash, height=5,
                         timestamp=1.0, difficulty=4)
        with pytest.raises(ValidationError):
            chain.add_block(bad)

    def test_bad_pow_rejected(self, chain):
        good = Block.mine(MINER, prev_hash=chain.genesis.block_hash,
                          height=1, timestamp=1.0, difficulty=14)
        forged = Block(
            prev_hash=good.prev_hash, height=good.height,
            timestamp=good.timestamp, difficulty=good.difficulty,
            miner=good.miner, transactions=good.transactions, nonce=0,
        )
        if forged.verify_pow():
            pytest.skip("nonce 0 accidentally valid")
        with pytest.raises(InvalidPowError):
            chain.add_block(forged)

    def test_timestamp_before_parent_rejected(self, chain):
        a = extend(chain, chain.genesis, timestamp=10.0)
        bad = Block.mine(MINER, prev_hash=a.block_hash, height=2,
                         timestamp=5.0, difficulty=4)
        with pytest.raises(TimestampError):
            chain.add_block(bad)

    def test_second_genesis_rejected(self, chain):
        with pytest.raises(ValidationError):
            chain.add_block(Block.mine_genesis(MINER))

    def test_badly_signed_transaction_rejected(self, chain):
        tx = Transaction.create(
            SENDER, kind="data", payload=b"x", timestamp=0.0,
            branch=ZERO_HASH, trunk=ZERO_HASH, difficulty=1,
        )
        forged_tx = Transaction(
            kind=tx.kind, issuer=tx.issuer, payload=b"swapped",
            timestamp=tx.timestamp, branch=tx.branch, trunk=tx.trunk,
            difficulty=tx.difficulty, nonce=tx.nonce, signature=tx.signature,
        )
        block = Block.mine(
            MINER, prev_hash=chain.genesis.block_hash, height=1,
            timestamp=1.0, difficulty=4, transactions=(forged_tx,),
        )
        with pytest.raises(ValidationError):
            chain.add_block(block)


class TestForks:
    def test_fork_does_not_become_main(self, chain):
        a = extend(chain, chain.genesis)
        b = extend(chain, a)
        fork = Block.mine(MINER, prev_hash=a.block_hash, height=2,
                          timestamp=a.timestamp + 0.5, difficulty=4)
        became_main = chain.add_block(fork)
        assert not became_main
        assert chain.best_tip.block_hash == b.block_hash
        assert chain.fork_count == 1
        assert fork.block_hash in {blk.block_hash for blk in chain.orphaned_blocks()}

    def test_heavier_fork_causes_reorg(self, chain):
        a = extend(chain, chain.genesis, difficulty=4)
        fork1 = Block.mine(MINER, prev_hash=chain.genesis.block_hash,
                           height=1, timestamp=0.5, difficulty=8)
        assert chain.add_block(fork1) is True  # 2^8 > 2^4: heavier wins
        assert chain.reorg_count == 1
        assert chain.best_tip.block_hash == fork1.block_hash
        assert a.block_hash in {blk.block_hash for blk in chain.orphaned_blocks()}

    def test_is_on_main_chain(self, chain):
        a = extend(chain, chain.genesis)
        fork = Block.mine(MINER, prev_hash=chain.genesis.block_hash,
                          height=1, timestamp=0.5, difficulty=2)
        chain.add_block(fork)
        assert chain.is_on_main_chain(a.block_hash)
        assert not chain.is_on_main_chain(fork.block_hash)
        assert not chain.is_on_main_chain(b"\x00" * 32)

    def test_cumulative_work_accumulates(self, chain):
        a = extend(chain, chain.genesis, difficulty=4)
        assert (chain.cumulative_work(a.block_hash)
                == chain.genesis.work + a.work)


class TestConfirmations:
    def test_confirmed_blocks_depth(self, chain):
        tip = chain.genesis
        blocks = [tip]
        for _ in range(6):
            tip = extend(chain, tip, payloads=(b"p",))
            blocks.append(tip)
        confirmed = chain.confirmed_blocks(confirmations=6)
        assert [b.height for b in confirmed] == [0]
        # confirmations=3 exposes heights 0-3; genesis carries no txs.
        assert len(list(chain.confirmed_transactions(confirmations=3))) == 3

    def test_zero_confirmations_returns_all(self, chain):
        extend(chain, chain.genesis)
        assert len(chain.confirmed_blocks(0)) == 2
