"""Tests for repro.chain.miner."""

import random

import pytest

from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.chain.miner import Miner
from repro.crypto.keys import KeyPair
from repro.devices.clock import SimulatedClock
from repro.devices.profiles import PC
from repro.pow.engine import PowEngine
from repro.tangle.transaction import Transaction, ZERO_HASH

MINER_KEYS = KeyPair.generate(seed=b"miner-tests")
SENDER = KeyPair.generate(seed=b"miner-sender")


def data_tx(i):
    return Transaction.create(
        SENDER, kind="data", payload=f"tx-{i}".encode(), timestamp=0.0,
        branch=ZERO_HASH, trunk=ZERO_HASH, difficulty=1,
    )


@pytest.fixture()
def setup():
    chain = Blockchain(Block.mine_genesis(MINER_KEYS))
    clock = SimulatedClock()
    engine = PowEngine(PC, clock, rng=random.Random(3))
    miner = Miner(MINER_KEYS, chain, engine, block_difficulty=6,
                  max_block_transactions=4)
    return chain, clock, miner


class TestMempool:
    def test_submit_queues(self, setup):
        _, _, miner = setup
        miner.submit(data_tx(0))
        assert miner.mempool_depth == 1

    def test_empty_pool_mines_nothing(self, setup):
        _, _, miner = setup
        assert miner.mine_next_block() is None
        assert miner.blocks_mined == 0

    def test_block_size_cap(self, setup):
        chain, _, miner = setup
        for i in range(10):
            miner.submit(data_tx(i))
        block = miner.mine_next_block()
        assert len(block.transactions) == 4
        assert miner.mempool_depth == 6

    def test_fifo_order(self, setup):
        _, _, miner = setup
        txs = [data_tx(i) for i in range(6)]
        for tx in txs:
            miner.submit(tx)
        block = miner.mine_next_block()
        assert list(block.transactions) == txs[:4]


class TestMining:
    def test_drain_mines_everything(self, setup):
        chain, _, miner = setup
        for i in range(10):
            miner.submit(data_tx(i))
        blocks = miner.drain()
        assert len(blocks) == 3  # 4 + 4 + 2
        assert miner.mempool_depth == 0
        assert chain.height == 3
        assert miner.blocks_mined == 3

    def test_clock_advances_with_mining(self, setup):
        _, clock, miner = setup
        miner.submit(data_tx(0))
        miner.mine_next_block()
        assert clock.now() > 0.0

    def test_blocks_verify_and_chain(self, setup):
        chain, _, miner = setup
        for i in range(5):
            miner.submit(data_tx(i))
        blocks = miner.drain()
        for block in blocks:
            assert block.verify_pow()
        main = chain.main_chain()
        assert [b.block_hash for b in main[1:]] == [b.block_hash for b in blocks]

    def test_max_block_transactions_validated(self, setup):
        chain, clock, _ = setup
        engine = PowEngine(PC, clock, rng=random.Random(1))
        with pytest.raises(ValueError):
            Miner(MINER_KEYS, chain, engine, block_difficulty=4,
                  max_block_transactions=0)
