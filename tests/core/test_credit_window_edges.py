"""Edge cases of the incremental CrP window (Eqn. 3).

The rolling aggregate in :class:`~repro.core.credit.CreditRegistry`
must agree with the definition — sum of weights of records with
``now - ΔT <= t_k <= now`` — at every boundary and through every
invalidation path: records landing exactly on the window edges,
out-of-order arrivals, pruning through the middle of a live window,
weight pushes against clean and dirty windows, and export/import round
trips of the incremental state.
"""

import pytest

from repro.core.credit import CreditParameters, CreditRegistry, MaliciousBehaviour

NODE = b"\x11" * 32
OTHER = b"\x22" * 32


def make_hash(i: int) -> bytes:
    return bytes([i + 1]) * 32


class TestWindowBoundaries:
    def test_record_exactly_at_window_start_is_included(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 70.0)
        # now - ΔT == 70.0 exactly: inclusive lower bound.
        assert registry.positive_credit(NODE, 100.0) == 1.0 / 30.0

    def test_record_just_before_window_start_is_excluded(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 69.75)
        assert registry.positive_credit(NODE, 100.0) == 0.0

    def test_record_exactly_at_now_is_included(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 100.0)
        assert registry.positive_credit(NODE, 100.0) == 1.0 / 30.0

    def test_future_record_is_excluded_then_enters(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 105.0)
        assert registry.positive_credit(NODE, 100.0) == 0.0
        # ... and is admitted once the frontier reaches it.
        assert registry.positive_credit(NODE, 105.0) == 1.0 / 30.0

    def test_record_slides_out_as_frontier_advances(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 10.0)
        assert registry.positive_credit(NODE, 10.0) == 1.0 / 30.0
        assert registry.positive_credit(NODE, 40.0) == 1.0 / 30.0  # edge: 40-30=10
        assert registry.positive_credit(NODE, 40.25) == 0.0

    def test_empty_window_sum_is_exactly_zero(self):
        # The running sum resets to literal 0.0 when the window empties:
        # no accumulated float residue may survive.
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        for i in range(50):
            registry.record_transaction(NODE, make_hash(i % 8), float(i))
        assert registry.positive_credit(NODE, 49.0) > 0.0
        assert registry.positive_credit(NODE, 1000.0) == 0.0
        assert registry._history[NODE].w_sum == 0.0


class TestOutOfOrderTimestamps:
    def test_out_of_order_insert_lands_in_window(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 100.0)
        assert registry.positive_credit(NODE, 100.0) == 1.0 / 30.0
        # A record older than the newest arrives late but inside the
        # window: the next evaluation must see it.
        registry.record_transaction(NODE, make_hash(1), 90.0)
        assert registry.positive_credit(NODE, 100.0) == 2.0 / 30.0

    def test_out_of_order_insert_behind_window(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 100.0)
        registry.positive_credit(NODE, 100.0)
        registry.record_transaction(NODE, make_hash(1), 10.0)
        assert registry.positive_credit(NODE, 100.0) == 1.0 / 30.0
        # Evaluating back at the old record's time sees only it.
        assert registry.positive_credit(NODE, 10.0) == 1.0 / 30.0

    def test_non_monotone_evaluation_times(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        for t in (10.0, 20.0, 50.0, 80.0):
            registry.record_transaction(NODE, make_hash(int(t)), t)
        # Forward, backward, forward again — each against the definition.
        assert registry.positive_credit(NODE, 80.0) == 2.0 / 30.0  # 50, 80
        assert registry.positive_credit(NODE, 20.0) == 2.0 / 30.0  # 10, 20
        assert registry.positive_credit(NODE, 49.75) == 1.0 / 30.0  # 20
        assert registry.positive_credit(NODE, 80.0) == 2.0 / 30.0

    def test_duplicate_timestamps_all_count(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        for i in range(5):
            registry.record_transaction(NODE, make_hash(i), 42.0)
        assert registry.positive_credit(NODE, 42.0) == 5.0 / 30.0


class TestInOrderAppendBehindWindow:
    """An append can be in-order (>= the newest timestamp) yet older
    than the window start when the evaluation frontier ran far ahead of
    the records.  Such appends are inadmissible and must not leave the
    eager-admission indices pointing at the wrong record."""

    def test_stale_append_then_in_window_append(self):
        weights = {make_hash(0): 1.0, make_hash(1): 1.0, make_hash(2): 3.0}
        registry = CreditRegistry(CreditParameters(delta_t=30.0),
                                  weight_provider=weights.__getitem__)
        registry.record_transaction(NODE, make_hash(0), 0.0)
        assert registry.positive_credit(NODE, 300.0) == 0.0
        registry.record_transaction(NODE, make_hash(1), 1.0)  # behind 270
        registry.record_transaction(NODE, make_hash(2), 299.0)
        # Only the t=299 record is in [270, 300].
        assert registry.positive_credit(NODE, 300.0) == 3.0 / 30.0

    def test_repeated_stale_appends(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 0.0)
        assert registry.positive_credit(NODE, 300.0) == 0.0
        for i in range(1, 5):
            registry.record_transaction(NODE, make_hash(i), float(i))
        registry.record_transaction(NODE, make_hash(5), 280.0)
        registry.record_transaction(NODE, make_hash(6), 300.0)
        assert registry.positive_credit(NODE, 300.0) == 2.0 / 30.0

    def test_weight_push_after_stale_append(self):
        """A weight push between the stale append and the next
        evaluation must not corrupt the (invalidated) window sum."""
        weights = {make_hash(0): 1.0, make_hash(1): 1.0}
        registry = CreditRegistry(CreditParameters(delta_t=30.0),
                                  weight_provider=weights.__getitem__)
        registry.record_transaction(NODE, make_hash(0), 0.0)
        assert registry.positive_credit(NODE, 300.0) == 0.0
        registry.record_transaction(NODE, make_hash(1), 1.0)
        registry.refresh_weight_values({make_hash(1): 4.0})
        assert registry.positive_credit(NODE, 300.0) == 0.0
        assert registry.positive_credit(NODE, 31.0) == 4.0 / 30.0


class TestForgetMidWindow:
    def test_forget_before_cuts_through_live_window(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        for t in (75.0, 80.0, 90.0, 100.0):
            registry.record_transaction(NODE, make_hash(int(t)), t)
        assert registry.positive_credit(NODE, 100.0) == 4.0 / 30.0
        # Prune through the middle of the active window: 75 and 80 go.
        assert registry.forget_before(NODE, 85.0) == 2
        assert registry.positive_credit(NODE, 100.0) == 2.0 / 30.0
        assert registry.transaction_count(NODE) == 2

    def test_forget_exactly_at_record_keeps_it(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 50.0)
        assert registry.forget_before(NODE, 50.0) == 0  # >= cutoff survives
        assert registry.transaction_count(NODE) == 1
        assert registry.forget_before(NODE, 50.25) == 1
        assert registry.transaction_count(NODE) == 0

    def test_forget_never_touches_malicious(self):
        registry = CreditRegistry(CreditParameters())
        registry.record_malicious(
            NODE, MaliciousBehaviour.DOUBLE_SPENDING, 10.0)
        registry.forget_before(NODE, 1e9)
        assert registry.malicious_count(NODE) == 1
        assert registry.negative_credit(NODE, 1e9) < 0.0

    def test_forget_then_weight_push_on_pruned_hash(self):
        # A weight update for a fully pruned hash must be a no-op, not
        # a KeyError or a corruption of some other node's window.
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 10.0)
        registry.record_transaction(OTHER, make_hash(1), 10.0)
        registry.forget_before(NODE, 20.0)
        assert registry.refresh_weight_values({make_hash(0): 5.0}) == 0
        assert registry.positive_credit(OTHER, 10.0) == 1.0 / 30.0


class TestWeightPushes:
    def test_push_adjusts_clean_window_sum(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 10.0)
        assert registry.positive_credit(NODE, 10.0) == 1.0 / 30.0
        registry.refresh_weight_values({make_hash(0): 3.0})
        assert registry.positive_credit(NODE, 10.0) == 3.0 / 30.0

    def test_push_respects_cap(self):
        registry = CreditRegistry(
            CreditParameters(max_transaction_weight=5.0))
        registry.record_transaction(NODE, make_hash(0), 10.0)
        registry.refresh_weight_values({make_hash(0): 1000.0})
        assert registry.positive_credit(NODE, 10.0) == 5.0 / 30.0

    def test_push_on_record_newer_than_window_frontier(self):
        # Record lands after the last evaluation; a push arrives before
        # the next evaluation.  The eager-admit path keeps the rolling
        # sum and the definition in agreement.
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 10.0)
        assert registry.positive_credit(NODE, 20.0) == 1.0 / 30.0
        registry.record_transaction(NODE, make_hash(1), 20.0)
        registry.refresh_weight_values({make_hash(1): 4.0})
        assert registry.positive_credit(NODE, 20.0) == 5.0 / 30.0

    def test_push_same_hash_recorded_by_multiple_nodes(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        registry.record_transaction(NODE, make_hash(0), 10.0)
        registry.record_transaction(OTHER, make_hash(0), 12.0)
        registry.refresh_weight_values({make_hash(0): 2.0})
        assert registry.positive_credit(NODE, 15.0) == 2.0 / 30.0
        assert registry.positive_credit(OTHER, 15.0) == 2.0 / 30.0


class TestExportImportRoundTrip:
    def _populated(self) -> CreditRegistry:
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        for i, t in enumerate((75.0, 80.0, 90.0, 99.75, 100.0)):
            registry.record_transaction(NODE, make_hash(i), t)
        registry.record_transaction(OTHER, make_hash(9), 95.0)
        registry.record_malicious(NODE, MaliciousBehaviour.LAZY_TIPS, 60.0)
        return registry

    def test_round_trip_preserves_evaluations(self):
        registry = self._populated()
        state = registry.export_state(now=100.0)
        restored = CreditRegistry(CreditParameters(delta_t=30.0))
        restored.import_state(state)
        for node_id in (NODE, OTHER):
            for now in (100.0, 110.0, 129.75, 130.0, 200.0):
                assert restored.credit(node_id, now) == \
                    registry.credit(node_id, now)

    def test_round_trip_drops_expired_records_only(self):
        registry = self._populated()
        registry.record_transaction(NODE, make_hash(7), 10.0)  # expired
        state = registry.export_state(now=100.0)
        restored = CreditRegistry(CreditParameters(delta_t=30.0))
        restored.import_state(state)
        assert restored.transaction_count(NODE) == 5  # 70.0 <= t
        assert restored.malicious_count(NODE) == 1

    def test_double_round_trip_is_stable(self):
        registry = self._populated()
        once = CreditRegistry(CreditParameters(delta_t=30.0))
        once.import_state(registry.export_state(now=100.0))
        twice = CreditRegistry(CreditParameters(delta_t=30.0))
        twice.import_state(once.export_state(now=100.0))
        for now in (100.0, 115.0, 130.0):
            assert twice.credit(NODE, now) == once.credit(NODE, now)

    def test_imported_weights_survive_without_provider(self):
        # Export resolves weights at snapshot time; an importer that
        # cannot resolve the hash (pruned tangle) must keep using them.
        weights = {make_hash(0): 4.0}
        registry = CreditRegistry(
            CreditParameters(delta_t=30.0),
            weight_provider=lambda h: weights[h])
        registry.record_transaction(NODE, make_hash(0), 90.0)
        state = registry.export_state(now=100.0)
        restored = CreditRegistry(
            CreditParameters(delta_t=30.0),
            weight_provider=lambda h: (_ for _ in ()).throw(KeyError(h)))
        restored.import_state(state)
        assert restored.positive_credit(NODE, 100.0) == 4.0 / 30.0

    def test_refresh_hook_runs_before_evaluation_and_export(self):
        calls = []
        registry = CreditRegistry(CreditParameters())
        registry.set_refresh_hook(lambda: calls.append(1))
        registry.record_transaction(NODE, make_hash(0), 1.0)
        registry.positive_credit(NODE, 1.0)
        assert len(calls) == 1
        registry.export_state(now=1.0)
        assert len(calls) == 2
        registry.set_refresh_hook(None)
        registry.positive_credit(NODE, 1.0)
        assert len(calls) == 2


class TestComplexityShape:
    def test_window_sum_is_not_rescanned_when_clean(self):
        """The rolling path touches only crossed records: advancing the
        frontier over an unchanged window costs zero weight reads."""
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        history_len = 2000
        for i in range(history_len):
            registry.record_transaction(
                NODE, make_hash(i % 32), float(i) * 0.01)
        registry.positive_credit(NODE, 30.0)
        history = registry._history[NODE]
        lo, hi = history.w_lo, history.w_hi
        # Same frontier again: pointers must not move (no rescan).
        registry.positive_credit(NODE, 30.0)
        assert (history.w_lo, history.w_hi) == (lo, hi)
        # A small advance moves the pointers by the crossed records only.
        registry.positive_credit(NODE, 30.01)
        assert history.w_hi - hi <= 2
        assert history.w_lo - lo <= 2

    def test_export_is_active_window_sized(self):
        registry = CreditRegistry(CreditParameters(delta_t=30.0))
        for i in range(1000):
            registry.record_transaction(NODE, make_hash(i % 32), float(i))
        state = registry.export_state(now=999.0)
        exported = state["nodes"][NODE.hex()]["transactions"]
        # Only the ΔT window survives, not the 1000-record history.
        assert len(exported) == 31  # 969.0 .. 999.0 inclusive
