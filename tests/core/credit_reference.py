"""Deliberately naive reference credit registry for differential tests.

Every evaluation recomputes Eqn. 3/4 from scratch over the full
recorded history — no windows, no cached weights, no incremental
anything.  Each method is a direct transcription of the paper's
definition, which makes this implementation trivially auditable and
therefore a trustworthy oracle for the optimized
:class:`repro.core.credit.CreditRegistry`: the differential tests drive
both through identical schedules and assert the answers never diverge.

Summation order matters for float equality: records are summed in
canonical ``(timestamp, insertion sequence)`` order — exactly the order
the optimized registry keeps its per-node record lists in.  (With the
system's integer weights capped at ``max_transaction_weight`` every
partial sum is exact anyway, so the order is belt and braces.)

Keep this file boring.  Its only job is to be obviously correct.
"""

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.credit import CreditParameters


class ReferenceCreditRegistry:
    """O(history)-per-evaluation transcription of Eqns. 2–5."""

    def __init__(self, params: Optional[CreditParameters] = None, *,
                 weight_provider: Optional[Callable[[bytes], int]] = None):
        self.params = params if params is not None else CreditParameters()
        self._weight_provider = weight_provider
        # node id -> list of (timestamp, tx_hash, seq), any order
        self._transactions: Dict[bytes, List[Tuple[float, bytes, int]]] = {}
        # node id -> list of (timestamp, behaviour)
        self._malicious: Dict[bytes, List[Tuple[float, str]]] = {}
        self._weight_overrides: Dict[bytes, float] = {}
        self._seq = 0

    def set_weight_provider(self,
                            weight_provider: Callable[[bytes], int]) -> None:
        self._weight_provider = weight_provider

    # -- recording -------------------------------------------------------

    def record_transaction(self, node_id: bytes, tx_hash: bytes,
                           timestamp: float) -> None:
        self._transactions.setdefault(node_id, []).append(
            (timestamp, tx_hash, self._seq))
        self._seq += 1

    def record_malicious(self, node_id: bytes, behaviour: str,
                         timestamp: float) -> None:
        self._malicious.setdefault(node_id, []).append((timestamp, behaviour))

    # -- from-scratch evaluation -----------------------------------------

    def _transaction_weight(self, tx_hash: bytes) -> float:
        if self._weight_provider is None:
            weight = self._weight_overrides.get(tx_hash, 1.0)
            return min(weight, self.params.max_transaction_weight)
        try:
            weight = float(self._weight_provider(tx_hash))
        except KeyError:
            weight = self._weight_overrides.get(tx_hash, 1.0)
        return min(weight, self.params.max_transaction_weight)

    def positive_credit(self, node_id: bytes, now: float) -> float:
        """Eqn. 3, recomputed from scratch: sum the weights of every
        record in ``[now - ΔT, now]``, in canonical (ts, seq) order."""
        window_start = now - self.params.delta_t
        in_window = sorted(
            (entry for entry in self._transactions.get(node_id, [])
             if window_start <= entry[0] <= now),
            key=lambda entry: (entry[0], entry[2]),
        )
        total = 0.0
        for _, tx_hash, _ in in_window:
            total += self._transaction_weight(tx_hash)
        return total / self.params.delta_t

    def negative_credit(self, node_id: bytes, now: float) -> float:
        """Eqn. 4, recomputed from scratch."""
        penalty = 0.0
        for timestamp, behaviour in self._malicious.get(node_id, []):
            if timestamp > now:
                continue
            elapsed = max(now - timestamp, self.params.min_elapsed)
            penalty += (
                self.params.punishment_coefficient(behaviour)
                * self.params.delta_t / elapsed
            )
        return -penalty

    def credit(self, node_id: bytes, now: float) -> float:
        """Eqn. 2."""
        return (
            self.params.lambda1 * self.positive_credit(node_id, now)
            + self.params.lambda2 * self.negative_credit(node_id, now)
        )

    # -- pruning ---------------------------------------------------------

    def forget_before(self, node_id: bytes, cutoff: float) -> int:
        """Drop transaction records with ``timestamp < cutoff``; keep
        malicious records forever (Eqn. 4 never forgets)."""
        entries = self._transactions.get(node_id, [])
        kept = [entry for entry in entries if entry[0] >= cutoff]
        dropped = len(entries) - len(kept)
        if dropped:
            self._transactions[node_id] = kept
        return dropped
