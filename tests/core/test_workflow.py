"""Tests for repro.core.workflow (Fig. 6)."""

import pytest

from repro.core.biot import BIoTConfig, BIoTSystem
from repro.core.workflow import WorkflowReport, run_workflow


@pytest.fixture(scope="module")
def report_and_system():
    system = BIoTSystem.build(BIoTConfig(
        device_count=3, gateway_count=2, seed=21, initial_difficulty=6,
        report_interval=2.0,
    ))
    report = run_workflow(system, report_seconds=30.0)
    return report, system


class TestWorkflow:
    def test_all_steps_pass(self, report_and_system):
        report, _ = report_and_system
        assert report.ok, report.format()

    def test_five_steps_recorded(self, report_and_system):
        report, _ = report_and_system
        assert [s.number for s in report.steps] == [1, 2, 3, 4, 5]

    def test_step1_registers_gateways(self, report_and_system):
        report, system = report_and_system
        step = report.steps[0]
        assert step.details["registered"] == len(system.gateways)

    def test_step2_authorizes_all_devices(self, report_and_system):
        report, system = report_and_system
        assert report.steps[1].details["authorized"] == len(system.devices)

    def test_step3_distributes_to_sensitive_only(self, report_and_system):
        report, system = report_and_system
        sensitive = sum(1 for d in system.devices if d.sensor.sensitive)
        step = report.steps[2]
        assert step.details["sensitive_devices"] == sensitive
        assert step.details["completed"] == sensitive

    def test_steps_4_5_produce_traffic(self, report_and_system):
        report, _ = report_and_system
        assert report.steps[3].details["pow_solves"] > 0
        assert report.steps[4].details["accepted"] > 0

    def test_format_is_readable(self, report_and_system):
        report, _ = report_and_system
        text = report.format()
        assert "B-IoT workflow" in text
        assert "step 1" in text and "step 5" in text
        assert "FAILED" not in text

    def test_marks_system_initialized(self, report_and_system):
        _, system = report_and_system
        assert system.initialized


class TestReportMechanics:
    def test_empty_report_is_ok(self):
        assert WorkflowReport().ok

    def test_failed_step_fails_report(self):
        report = WorkflowReport()
        report.add(1, "good", True)
        report.add(2, "bad", False, why="because")
        assert not report.ok
        assert "FAILED" in report.format()
        assert "why = because" in report.format()
