"""Differential tests: incremental credit vs the naive Eqn. 3/4 oracle.

The optimized :class:`~repro.core.credit.CreditRegistry` keeps rolling
window aggregates and record-time weight caches; the
:class:`tests.core.credit_reference.ReferenceCreditRegistry` recomputes
everything from scratch.  These tests drive both through identical
schedules — records, malice, evaluations at monotone and non-monotone
``now``, ``forget_before`` pruning, weight-provider growth pushed via
``refresh_weight_values``, export/import round-trips, and a real tangle
with batched weight flushes — and require *exact* float equality.

Exactness holds because every weight in play is a multiple of 0.25
clamped to ``max_transaction_weight`` (the system's weights are small
capped integers), so all partial sums are exact in binary floating
point, and both implementations sum window records in the same
canonical (timestamp, insertion sequence) order.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.consensus import CreditBasedConsensus
from repro.core.credit import CreditParameters, CreditRegistry, MaliciousBehaviour
from repro.crypto.keys import KeyPair
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction

from .credit_reference import ReferenceCreditRegistry

BEHAVIOURS = [
    MaliciousBehaviour.LAZY_TIPS,
    MaliciousBehaviour.DOUBLE_SPENDING,
    MaliciousBehaviour.BAD_DATA,
]


class GrowingWeights:
    """A dict-backed weight provider whose values grow over time —
    a stand-in for the tangle's cumulative weights."""

    def __init__(self):
        self.weights = {}

    def provider(self, tx_hash: bytes) -> float:
        return self.weights[tx_hash]  # KeyError for unknown: intended

    def set(self, tx_hash: bytes, weight: float) -> None:
        self.weights[tx_hash] = weight


def assert_equal_evaluations(optimized, reference, node_ids, now):
    for node_id in node_ids:
        assert optimized.positive_credit(node_id, now) == \
            reference.positive_credit(node_id, now), (node_id.hex(), now)
        assert optimized.negative_credit(node_id, now) == \
            reference.negative_credit(node_id, now), (node_id.hex(), now)
        assert optimized.credit(node_id, now) == \
            reference.credit(node_id, now), (node_id.hex(), now)


class TestSeededScheduleDifferential:
    """Long seeded random schedules over every registry operation."""

    def _run_schedule(self, seed: int, steps: int = 400) -> None:
        rng = random.Random(seed)
        weights = GrowingWeights()
        params = CreditParameters()
        optimized = CreditRegistry(params, weight_provider=weights.provider)
        reference = ReferenceCreditRegistry(
            params, weight_provider=weights.provider)

        node_ids = [bytes([i]) * 32 for i in range(4)]
        hashes = []
        clock = 0.0

        for _ in range(steps):
            op = rng.random()
            if op < 0.45:
                # Record a transaction; 20% of timestamps are in the past
                # (out-of-order arrival), and hashes are sometimes reused
                # (the same transaction recorded again / by another node).
                node_id = rng.choice(node_ids)
                clock += rng.choice([0.0, 0.25, 0.5, 1.0, 3.0])
                if hashes and rng.random() < 0.15:
                    tx_hash = rng.choice(hashes)
                else:
                    tx_hash = rng.randrange(2 ** 128).to_bytes(32, "big")
                    hashes.append(tx_hash)
                    weights.set(tx_hash, rng.randrange(1, 5))
                timestamp = clock
                if rng.random() < 0.2:
                    timestamp = max(0.0, clock - rng.choice([0.25, 1.0, 7.5, 40.0]))
                optimized.record_transaction(node_id, tx_hash, timestamp)
                reference.record_transaction(node_id, tx_hash, timestamp)
            elif op < 0.55:
                node_id = rng.choice(node_ids)
                behaviour = rng.choice(BEHAVIOURS)
                optimized.record_malicious(node_id, behaviour, clock)
                reference.record_malicious(node_id, behaviour, clock)
            elif op < 0.65 and hashes:
                # Cumulative weight growth, pushed into the optimized
                # registry the way the tangle flush listener does; the
                # reference reads the provider fresh every evaluation.
                updates = {}
                for tx_hash in rng.sample(hashes, min(len(hashes), 3)):
                    grown = weights.weights[tx_hash] + rng.choice([0.25, 1, 2])
                    weights.set(tx_hash, grown)
                    updates[tx_hash] = grown
                optimized.refresh_weight_values(updates)
            elif op < 0.72 and hashes and rng.random() < 0.5:
                # Single-hash refresh through the provider.
                tx_hash = rng.choice(hashes)
                weights.set(tx_hash, weights.weights[tx_hash] + 1)
                optimized.refresh_weight(tx_hash)
            elif op < 0.82:
                # forget_before, sometimes mid-window.
                node_id = rng.choice(node_ids)
                cutoff = clock - rng.choice([0.0, 5.0, 15.0, 30.0, 60.0])
                dropped_fast = optimized.forget_before(node_id, cutoff)
                dropped_ref = reference.forget_before(node_id, cutoff)
                assert dropped_fast == dropped_ref
            else:
                # Evaluate: mostly at the monotone frontier, sometimes in
                # the past (the consensus validator evaluates at
                # tx.timestamp), sometimes far ahead of every record — so
                # later in-order appends land *behind* the window start
                # (the eager-admission regression).
                now = clock
                roll = rng.random()
                if roll < 0.3:
                    now = max(0.0, clock - rng.choice([0.25, 2.0, 10.0, 29.75,
                                                       30.0, 45.0]))
                elif roll < 0.45:
                    now = clock + rng.choice([31.0, 75.0, 300.0])
                assert_equal_evaluations(optimized, reference, node_ids, now)

        assert_equal_evaluations(optimized, reference, node_ids, clock)
        assert_equal_evaluations(optimized, reference, node_ids, clock + 30.0)
        assert_equal_evaluations(optimized, reference, node_ids, 0.0)

    def test_schedule_seed_0(self):
        self._run_schedule(0)

    def test_schedule_seed_1(self):
        self._run_schedule(1)

    def test_schedule_seed_2(self):
        self._run_schedule(2)

    def test_export_import_matches_reference(self):
        """A round-tripped optimized registry still matches the oracle
        for every post-cutoff evaluation."""
        rng = random.Random(99)
        weights = GrowingWeights()
        params = CreditParameters()
        optimized = CreditRegistry(params, weight_provider=weights.provider)
        reference = ReferenceCreditRegistry(
            params, weight_provider=weights.provider)
        node_ids = [bytes([i]) * 32 for i in range(3)]
        clock = 0.0
        for _ in range(200):
            clock += rng.choice([0.25, 0.5, 2.0])
            node_id = rng.choice(node_ids)
            tx_hash = rng.randrange(2 ** 128).to_bytes(32, "big")
            weights.set(tx_hash, rng.randrange(1, 5))
            optimized.record_transaction(node_id, tx_hash, clock)
            reference.record_transaction(node_id, tx_hash, clock)
            if rng.random() < 0.1:
                optimized.record_malicious(
                    node_id, MaliciousBehaviour.LAZY_TIPS, clock)
                reference.record_malicious(
                    node_id, MaliciousBehaviour.LAZY_TIPS, clock)

        state = optimized.export_state(now=clock)
        restored = CreditRegistry(params, weight_provider=weights.provider)
        restored.import_state(state)
        # Post-import evaluations inside the surviving window match the
        # oracle exactly (pre-cutoff records were legitimately pruned).
        assert_equal_evaluations(restored, reference, node_ids, clock)
        assert_equal_evaluations(restored, reference, node_ids, clock + 7.5)
        # And the round trip preserves the optimized registry's own view.
        for node_id in node_ids:
            assert restored.credit(node_id, clock) == \
                optimized.credit(node_id, clock)
            assert restored.malicious_count(node_id) == \
                optimized.malicious_count(node_id)


class TestStaleInOrderAppendDifferential:
    """Regression: an in-order append older than the window start used
    to leave ``w_hi`` short of the record list end, so the next
    in-window append double-counted itself and evicted the wrong
    record on the following evaluation."""

    def test_stale_append_then_in_window_append(self):
        weights = GrowingWeights()
        params = CreditParameters(delta_t=30.0)
        optimized = CreditRegistry(params, weight_provider=weights.provider)
        reference = ReferenceCreditRegistry(
            params, weight_provider=weights.provider)
        node = b"\x01" * 32
        h_old, h_stale, h_live = (bytes([i + 10]) * 32 for i in range(3))
        for tx_hash, weight in ((h_old, 1), (h_stale, 1), (h_live, 3)):
            weights.set(tx_hash, weight)
        for registry in (optimized, reference):
            registry.record_transaction(node, h_old, 0.0)
        # Advance the window frontier far past every record...
        assert_equal_evaluations(optimized, reference, [node], 300.0)
        for registry in (optimized, reference):
            # ...then append in-order but behind the window start, and
            # follow with a genuinely in-window append.
            registry.record_transaction(node, h_stale, 1.0)
            registry.record_transaction(node, h_live, 299.0)
        assert_equal_evaluations(optimized, reference, [node], 300.0)
        assert optimized.positive_credit(node, 300.0) == 3.0 / 30.0


class TestTangleBackedDifferential:
    """The real wiring: a tangle with batched lazy weight flushes feeds
    the optimized registry via listener + refresh hook, while the
    oracle reads ``tangle.weight`` from scratch at evaluation time."""

    def test_matches_oracle_under_batched_flushes(self):
        rng = random.Random(7)
        keys = KeyPair.generate(seed=b"credit-diff")
        genesis = Transaction.create_genesis(keys)
        # A tiny flush interval forces many listener pushes; weights
        # stay exact at every read regardless.
        tangle = Tangle(genesis, weight_flush_interval=5)
        params = CreditParameters()
        optimized = CreditRegistry(params)
        consensus = CreditBasedConsensus(optimized)
        consensus.bind_tangle(tangle)
        reference = ReferenceCreditRegistry(
            params, weight_provider=tangle.weight)

        node_ids = [bytes([i + 1]) * 32 for i in range(3)]
        hashes = [genesis.tx_hash]
        clock = 0.0
        for i in range(80):
            clock += rng.choice([0.25, 0.5, 1.0])
            branch = rng.choice(hashes[-8:])
            trunk = rng.choice(hashes[-8:])
            tx = Transaction.create(
                keys, kind="data", payload=str(i).encode(),
                timestamp=clock, branch=branch, trunk=trunk, difficulty=1)
            tangle.attach(tx, arrival_time=clock)
            hashes.append(tx.tx_hash)
            node_id = rng.choice(node_ids)
            optimized.record_transaction(node_id, tx.tx_hash, clock)
            reference.record_transaction(node_id, tx.tx_hash, clock)
            if rng.random() < 0.3:
                now = clock if rng.random() < 0.7 else max(0.0, clock - 10.0)
                assert_equal_evaluations(
                    optimized, reference, node_ids, now)

        assert_equal_evaluations(optimized, reference, node_ids, clock)
        # Attach one more burst without evaluating, then evaluate: the
        # refresh hook must flush the pending batch first.
        for i in range(7):
            tx = Transaction.create(
                keys, kind="data", payload=f"burst{i}".encode(),
                timestamp=clock, branch=hashes[-1], trunk=hashes[-2],
                difficulty=1)
            tangle.attach(tx, arrival_time=clock)
            hashes.append(tx.tx_hash)
            optimized.record_transaction(node_ids[0], tx.tx_hash, clock)
            reference.record_transaction(node_ids[0], tx.tx_hash, clock)
        assert tangle.pending_weight_count > 0
        assert_equal_evaluations(optimized, reference, node_ids, clock)


# -- hypothesis property: random record/evaluate/forget schedules --------

operation = st.one_of(
    st.tuples(st.just("record"),
              st.integers(min_value=0, max_value=2),      # node
              st.integers(min_value=0, max_value=15),     # hash id
              st.integers(min_value=0, max_value=240)),   # ts quarters
    st.tuples(st.just("malice"),
              st.integers(min_value=0, max_value=2),
              st.sampled_from(BEHAVIOURS),
              st.integers(min_value=0, max_value=240)),
    st.tuples(st.just("grow"),
              st.integers(min_value=0, max_value=15),     # hash id
              st.integers(min_value=1, max_value=8),      # delta quarters
              st.just(0)),
    st.tuples(st.just("forget"),
              st.integers(min_value=0, max_value=2),
              st.integers(min_value=0, max_value=240),    # cutoff quarters
              st.just(0)),
    st.tuples(st.just("evaluate"),
              st.integers(min_value=0, max_value=2),
              st.integers(min_value=0, max_value=260),    # now quarters
              st.just(0)),
)


class TestPropertySchedules:
    @given(ops=st.lists(operation, min_size=1, max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_any_schedule_matches_oracle_exactly(self, ops):
        """Bit-exact equality over arbitrary interleavings of record
        (including out-of-order timestamps), malice, weight growth,
        forget_before and evaluation (including non-monotone now).

        All timestamps and weights live on a 0.25 grid, so float sums
        are exact and `==` is the right assertion.
        """
        weights = GrowingWeights()
        params = CreditParameters()
        optimized = CreditRegistry(params, weight_provider=weights.provider)
        reference = ReferenceCreditRegistry(
            params, weight_provider=weights.provider)
        node_ids = [bytes([i + 1]) * 32 for i in range(3)]

        def tx_hash_for(hash_id: int) -> bytes:
            tx_hash = bytes([hash_id + 1]) * 32
            if tx_hash not in weights.weights:
                weights.set(tx_hash, 1.0 + 0.25 * (hash_id % 6))
            return tx_hash

        for op in ops:
            kind = op[0]
            if kind == "record":
                _, node, hash_id, quarters = op
                tx_hash = tx_hash_for(hash_id)
                timestamp = quarters * 0.25
                optimized.record_transaction(
                    node_ids[node], tx_hash, timestamp)
                reference.record_transaction(
                    node_ids[node], tx_hash, timestamp)
            elif kind == "malice":
                _, node, behaviour, quarters = op
                optimized.record_malicious(
                    node_ids[node], behaviour, quarters * 0.25)
                reference.record_malicious(
                    node_ids[node], behaviour, quarters * 0.25)
            elif kind == "grow":
                _, hash_id, delta, _ = op
                tx_hash = tx_hash_for(hash_id)
                weights.set(tx_hash,
                            weights.weights[tx_hash] + delta * 0.25)
                optimized.refresh_weight_values(
                    {tx_hash: weights.weights[tx_hash]})
            elif kind == "forget":
                _, node, quarters, _ = op
                assert optimized.forget_before(
                    node_ids[node], quarters * 0.25) == \
                    reference.forget_before(node_ids[node], quarters * 0.25)
            else:
                _, node, quarters, _ = op
                now = quarters * 0.25
                assert optimized.positive_credit(node_ids[node], now) == \
                    reference.positive_credit(node_ids[node], now)
                assert optimized.credit(node_ids[node], now) == \
                    reference.credit(node_ids[node], now)

        for node_id in node_ids:
            for now in (0.0, 15.0, 30.0, 60.25, 65.0):
                assert optimized.credit(node_id, now) == \
                    reference.credit(node_id, now)
