"""Tests for repro.core.biot (the system facade).

These use a low initial difficulty so real PoW stays cheap; difficulty
*dynamics* (relative to credit) are unaffected by the absolute level.
"""

import pytest

from repro.core.authority import DataProtector
from repro.core.biot import BIoTConfig, BIoTSystem

CONFIG = BIoTConfig(device_count=4, gateway_count=2, seed=11,
                    initial_difficulty=6, report_interval=2.0)


@pytest.fixture(scope="module")
def running_system():
    system = BIoTSystem.build(CONFIG)
    system.initialize()
    system.start_devices()
    system.run_for(40.0)
    return system


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BIoTConfig(gateway_count=0)
        with pytest.raises(ValueError):
            BIoTConfig(device_count=0)
        with pytest.raises(ValueError):
            BIoTConfig(sensor_cycle=("radar",))

    def test_build_is_deterministic(self):
        a = BIoTSystem.build(BIoTConfig(seed=5))
        b = BIoTSystem.build(BIoTConfig(seed=5))
        assert a.manager.acl.manager == b.manager.acl.manager
        assert ([d.keypair.node_id for d in a.devices]
                == [d.keypair.node_id for d in b.devices])

    def test_different_seeds_differ(self):
        a = BIoTSystem.build(BIoTConfig(seed=5))
        b = BIoTSystem.build(BIoTConfig(seed=6))
        assert a.manager.acl.manager != b.manager.acl.manager


class TestTopology:
    def test_node_counts(self):
        system = BIoTSystem.build(CONFIG)
        assert len(system.gateways) == 2
        assert len(system.devices) == 4
        assert len(system.network.addresses) == 1 + 2 + 4

    def test_full_mesh_peers(self):
        system = BIoTSystem.build(CONFIG)
        full_nodes = [system.manager] + system.gateways
        for node in full_nodes:
            expected_peers = {n.address for n in full_nodes} - {node.address}
            assert set(node.relay.peers) == expected_peers

    def test_devices_assigned_round_robin(self):
        system = BIoTSystem.build(CONFIG)
        gateways_used = {d.gateway for d in system.devices}
        assert gateways_used == {"gateway-0", "gateway-1"}

    def test_genesis_shared_by_all_replicas(self):
        system = BIoTSystem.build(CONFIG)
        hashes = {n.tangle.genesis.tx_hash
                  for n in [system.manager] + system.gateways}
        assert len(hashes) == 1

    def test_token_allocations_in_ledger(self):
        system = BIoTSystem.build(CONFIG)
        for keys in system.device_keys.values():
            assert (system.manager.ledger.balance(keys.node_id)
                    == CONFIG.token_allocation)


class TestConfigurationVariants:
    def test_mcmc_tip_selection_system(self):
        """tip_alpha switches gateways to the weighted MCMC walk; the
        system still converges and serves everyone."""
        system = BIoTSystem.build(BIoTConfig(
            device_count=3, gateway_count=2, seed=61,
            initial_difficulty=6, report_interval=2.0, tip_alpha=0.5,
        ))
        from repro.tangle.tip_selection import WeightedRandomWalkSelector
        assert isinstance(system.gateways[0].tip_selector,
                          WeightedRandomWalkSelector)
        system.initialize()
        system.start_devices()
        system.run_for(30.0)
        for device in system.devices:
            assert device.stats.submissions_accepted > 0
        system.run_for(5.0)
        sizes = {n.tangle_size for n in [system.manager] + system.gateways}
        assert len(sizes) == 1

    def test_enforce_pow_disabled_mode(self):
        """Pure-simulation sweeps skip nonce verification but keep every
        other rule; the system behaves identically otherwise."""
        system = BIoTSystem.build(BIoTConfig(
            device_count=2, gateway_count=1, seed=62,
            initial_difficulty=6, report_interval=2.0, enforce_pow=False,
        ))
        system.initialize()
        system.start_devices()
        system.run_for(20.0)
        assert all(d.stats.submissions_accepted > 0 for d in system.devices)

    def test_custom_credit_params_flow_through(self):
        from repro.core.credit import CreditParameters
        params = CreditParameters(lambda2=2.0, delta_t=10.0)
        system = BIoTSystem.build(BIoTConfig(
            device_count=1, gateway_count=1, seed=63,
            credit_params=params,
        ))
        assert system.gateways[0].consensus.registry.params.lambda2 == 2.0
        assert system.gateways[0].consensus.max_parent_age == 10.0


class TestRunningSystem:
    def test_all_devices_report(self, running_system):
        for device in running_system.devices:
            assert device.stats.submissions_accepted > 0

    def test_replicas_converge(self, running_system):
        # Let in-flight gossip settle before comparing replicas.
        running_system.run_for(5.0)
        sizes = {n.address: n.tangle_size
                 for n in [running_system.manager] + running_system.gateways}
        assert len(set(sizes.values())) == 1, sizes

    def test_sensitive_devices_have_keys(self, running_system):
        for device in running_system.devices:
            if device.sensor.sensitive:
                assert device.protector.has_key()

    def test_sensitive_payloads_encrypted_on_ledger(self, running_system):
        gateway = running_system.gateways[0]
        sensitive_issuers = {
            d.keypair.node_id for d in running_system.devices
            if d.sensor.sensitive
        }
        found_encrypted = 0
        for tx in gateway.tangle:
            if tx.kind == "data" and tx.issuer.node_id in sensitive_issuers:
                assert DataProtector.is_encrypted(tx.payload)
                found_encrypted += 1
        assert found_encrypted > 0

    def test_plain_payloads_for_non_sensitive(self, running_system):
        gateway = running_system.gateways[0]
        plain_issuers = {
            d.keypair.node_id for d in running_system.devices
            if not d.sensor.sensitive
        }
        found_plain = 0
        for tx in gateway.tangle:
            if tx.kind == "data" and tx.issuer.node_id in plain_issuers:
                assert not DataProtector.is_encrypted(tx.payload)
                found_plain += 1
        assert found_plain > 0

    def test_manager_can_decrypt_sensitive_data(self, running_system):
        authority = DataProtector({
            "sensitive": running_system.manager.distributor.group_key()
        })
        gateway = running_system.gateways[1]
        decrypted = 0
        for tx in gateway.tangle:
            if tx.kind == "data" and DataProtector.is_encrypted(tx.payload):
                reading = authority.unprotect(tx.payload)
                assert reading.sensitive
                decrypted += 1
        assert decrypted > 0

    def test_active_devices_get_cheaper_pow(self, running_system):
        for device in running_system.devices:
            difficulties = device.stats.assigned_difficulties
            assert difficulties[0] == CONFIG.initial_difficulty
            assert difficulties[-1] < CONFIG.initial_difficulty

    def test_summary_fields(self, running_system):
        summary = running_system.summary()
        assert summary["devices"] == 4
        assert summary["submissions_accepted"] > 0
        assert summary["key_distributions"] == sum(
            1 for d in running_system.devices if d.sensor.sensitive
        )
