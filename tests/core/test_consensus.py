"""Tests for repro.core.consensus (credit-based PoW)."""

import pytest

from repro.core.consensus import (
    DEFAULT_INITIAL_DIFFICULTY,
    DEFAULT_MAX_DIFFICULTY,
    DEFAULT_MIN_DIFFICULTY,
    CreditBasedConsensus,
    FixedDifficultyPolicy,
    InverseDifficultyPolicy,
    LinearDifficultyPolicy,
)
from repro.core.credit import CreditRegistry, MaliciousBehaviour
from repro.crypto.keys import KeyPair
from repro.tangle.errors import InvalidPowError
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction

KEYS = KeyPair.generate(seed=b"consensus-tests")
NODE = KEYS.node_id


class TestFixedPolicy:
    def test_constant(self):
        policy = FixedDifficultyPolicy(11)
        assert policy.difficulty_for(-100) == 11
        assert policy.difficulty_for(0) == 11
        assert policy.difficulty_for(100) == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedDifficultyPolicy(0)


class TestInversePolicy:
    def test_neutral_credit_gets_initial(self):
        policy = InverseDifficultyPolicy()
        assert policy.difficulty_for(0.0) == DEFAULT_INITIAL_DIFFICULTY

    def test_positive_credit_lowers_difficulty(self):
        policy = InverseDifficultyPolicy()
        assert policy.difficulty_for(1.0) < DEFAULT_INITIAL_DIFFICULTY
        assert policy.difficulty_for(10.0) < policy.difficulty_for(1.0)

    def test_negative_credit_raises_difficulty(self):
        policy = InverseDifficultyPolicy()
        assert policy.difficulty_for(-1.0) > DEFAULT_INITIAL_DIFFICULTY
        assert policy.difficulty_for(-5.0) > policy.difficulty_for(-1.0)

    def test_clamped_to_bounds(self):
        policy = InverseDifficultyPolicy()
        assert policy.difficulty_for(10 ** 9) == DEFAULT_MIN_DIFFICULTY
        assert policy.difficulty_for(-10 ** 9) == DEFAULT_MAX_DIFFICULTY

    def test_monotone_decreasing(self):
        policy = InverseDifficultyPolicy()
        credits = [-50, -10, -1, 0, 0.5, 1, 5, 50]
        difficulties = [policy.difficulty_for(c) for c in credits]
        assert difficulties == sorted(difficulties, reverse=True)

    def test_credit_scale_halves_difficulty(self):
        policy = InverseDifficultyPolicy(credit_scale=2.0,
                                         initial_difficulty=12)
        # Cr == scale halves the difficulty: 12 * 2/(2+2) = 6.
        assert policy.difficulty_for(2.0) == 6

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            InverseDifficultyPolicy(credit_scale=0.0)
        with pytest.raises(ValueError):
            InverseDifficultyPolicy(initial_difficulty=30,
                                    max_difficulty=24)
        with pytest.raises(ValueError):
            InverseDifficultyPolicy(min_difficulty=12, initial_difficulty=11)
        with pytest.raises(ValueError):
            InverseDifficultyPolicy(negative_mode="squared")
        with pytest.raises(ValueError):
            InverseDifficultyPolicy(punish_bits=0.0)

    def test_log_time_mode_calibration(self):
        """One unit of negative credit at scale 1 adds punish_bits bits;
        the Fig. 8 recovery (~37 s ≈ D0+6) is reachable, not a ban."""
        policy = InverseDifficultyPolicy(punish_bits=1.5)
        assert policy.difficulty_for(-1.0) == round(
            DEFAULT_INITIAL_DIFFICULTY + 1.5)
        assert policy.difficulty_for(-15.0) == pytest.approx(
            DEFAULT_INITIAL_DIFFICULTY + 1.5 * 4, abs=1)

    def test_inverse_mode_saturates(self):
        """The literal hyperbola (ablation) hits the clamp immediately —
        the behaviour that motivated the log-time default."""
        policy = InverseDifficultyPolicy(negative_mode="inverse")
        assert policy.difficulty_for(-5.0) == DEFAULT_MAX_DIFFICULTY

    def test_both_modes_agree_on_positive_credit(self):
        log_time = InverseDifficultyPolicy(negative_mode="log-time")
        inverse = InverseDifficultyPolicy(negative_mode="inverse")
        for credit in (0.0, 0.5, 2.0, 10.0):
            assert (log_time.difficulty_for(credit)
                    == inverse.difficulty_for(credit))


class TestLinearPolicy:
    def test_gains(self):
        policy = LinearDifficultyPolicy(reward_gain=2.0, punish_gain=1.0,
                                        initial_difficulty=11)
        assert policy.difficulty_for(2.0) == 7
        assert policy.difficulty_for(-3.0) == 14
        assert policy.difficulty_for(0.0) == 11

    def test_clamps(self):
        policy = LinearDifficultyPolicy(reward_gain=100.0, punish_gain=100.0)
        assert policy.difficulty_for(10.0) == DEFAULT_MIN_DIFFICULTY
        assert policy.difficulty_for(-10.0) == DEFAULT_MAX_DIFFICULTY

    def test_validation(self):
        with pytest.raises(ValueError):
            LinearDifficultyPolicy(reward_gain=-1.0)


class TestCreditBasedConsensus:
    def _tangle_with(self, consensus):
        genesis = Transaction.create_genesis(KEYS)
        return Tangle(genesis, validators=[consensus.validator]), genesis

    def test_fresh_node_gets_initial_difficulty(self):
        consensus = CreditBasedConsensus()
        assert consensus.required_difficulty(NODE, 0.0) == DEFAULT_INITIAL_DIFFICULTY

    def test_activity_lowers_required_difficulty(self):
        consensus = CreditBasedConsensus()
        for t in range(0, 30):
            consensus.registry.record_transaction(NODE, bytes(32), float(t))
        assert (consensus.required_difficulty(NODE, 30.0)
                < DEFAULT_INITIAL_DIFFICULTY)

    def test_double_spend_report_raises_difficulty(self):
        consensus = CreditBasedConsensus()
        consensus.report_double_spend(NODE, 10.0)
        assert consensus.double_spend_reports == 1
        assert (consensus.required_difficulty(NODE, 10.5)
                > DEFAULT_INITIAL_DIFFICULTY)

    def test_observe_attach_records_honest_transaction(self):
        consensus = CreditBasedConsensus()
        tangle, genesis = self._tangle_with(CreditBasedConsensus())
        tx = Transaction.create(
            KEYS, kind="data", payload=b"x", timestamp=1.0,
            branch=genesis.tx_hash, trunk=genesis.tx_hash,
            difficulty=DEFAULT_INITIAL_DIFFICULTY,
        )
        result = tangle.attach(tx, arrival_time=1.0)
        lazy = consensus.observe_attach(result)
        assert not lazy
        assert consensus.registry.transaction_count(NODE) == 1

    def test_observe_attach_flags_lazy(self):
        consensus = CreditBasedConsensus(max_parent_age=5.0)
        tangle, genesis = self._tangle_with(CreditBasedConsensus())
        tx = Transaction.create(
            KEYS, kind="data", payload=b"x", timestamp=50.0,
            branch=genesis.tx_hash, trunk=genesis.tx_hash,
            difficulty=DEFAULT_INITIAL_DIFFICULTY,
        )
        result = tangle.attach(tx, arrival_time=50.0)
        assert consensus.observe_attach(result)
        assert consensus.lazy_detections == 1
        assert consensus.registry.malicious_count(NODE) == 1

    def test_validator_rejects_undercut_difficulty(self):
        consensus = CreditBasedConsensus(difficulty_tolerance=0)
        consensus.report_double_spend(NODE, 0.0)
        tangle, genesis = self._tangle_with(consensus)
        cheap = Transaction.create(
            KEYS, kind="data", payload=b"x", timestamp=0.5,
            branch=genesis.tx_hash, trunk=genesis.tx_hash, difficulty=2,
        )
        with pytest.raises(InvalidPowError, match="credit-required"):
            tangle.attach(cheap, arrival_time=0.5)

    def test_validator_tolerance(self):
        consensus = CreditBasedConsensus(difficulty_tolerance=2)
        required = consensus.required_difficulty(NODE, 1.0)
        tangle, genesis = self._tangle_with(consensus)
        slightly_low = Transaction.create(
            KEYS, kind="data", payload=b"x", timestamp=1.0,
            branch=genesis.tx_hash, trunk=genesis.tx_hash,
            difficulty=required - 2,
        )
        tangle.attach(slightly_low, arrival_time=1.0)  # accepted

    def test_validator_accepts_exact_requirement(self):
        consensus = CreditBasedConsensus(difficulty_tolerance=0)
        required = consensus.required_difficulty(NODE, 1.0)
        tangle, genesis = self._tangle_with(consensus)
        exact = Transaction.create(
            KEYS, kind="data", payload=b"x", timestamp=1.0,
            branch=genesis.tx_hash, trunk=genesis.tx_hash,
            difficulty=required,
        )
        tangle.attach(exact, arrival_time=1.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CreditBasedConsensus(max_parent_age=0.0)
        with pytest.raises(ValueError):
            CreditBasedConsensus(difficulty_tolerance=-1)

    def test_recovery_over_time(self):
        """The Fig. 8 story: punished credit recovers as time passes."""
        consensus = CreditBasedConsensus()
        consensus.report_double_spend(NODE, 100.0)
        punished = consensus.required_difficulty(NODE, 101.0)
        recovered = consensus.required_difficulty(NODE, 1000.0)
        assert punished > recovered
        assert recovered >= DEFAULT_INITIAL_DIFFICULTY  # scar remains
