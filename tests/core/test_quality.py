"""Tests for repro.core.quality (data quality control extension)."""

import random

import pytest

from repro.core.quality import (
    DEFAULT_ABSOLUTE_LIMITS,
    BAD_DATA_BEHAVIOUR,
    QualityVerdict,
    ReadingQualityMonitor,
)
from repro.devices.sensors import SensorReading, TemperatureSensor

ISSUER = b"\x01" * 32
OTHER = b"\x02" * 32


def reading(value, sensor_type="temperature", timestamp=0.0):
    return SensorReading(sensor_type, value, "u", timestamp)


class TestAbsoluteLimits:
    def test_impossible_temperature_flagged(self):
        monitor = ReadingQualityMonitor()
        verdict = monitor.assess(ISSUER, reading(500.0))
        assert not verdict.ok
        assert "plausible range" in verdict.reason
        assert monitor.readings_flagged == 1

    def test_humidity_bounds(self):
        monitor = ReadingQualityMonitor()
        assert monitor.assess(ISSUER, reading(50.0, "humidity")).ok
        assert not monitor.assess(ISSUER, reading(101.0, "humidity")).ok
        assert not monitor.assess(ISSUER, reading(-1.0, "humidity")).ok

    def test_unknown_sensor_type_has_no_absolute_screen(self):
        monitor = ReadingQualityMonitor()
        assert monitor.assess(ISSUER, reading(1e12, "exotic")).ok

    def test_limits_configurable(self):
        monitor = ReadingQualityMonitor(absolute_limits={"exotic": (0, 1)})
        assert not monitor.assess(ISSUER, reading(2.0, "exotic")).ok


class TestStatisticalScreening:
    def _warm_monitor(self, monitor, values, issuer=ISSUER):
        for value in values:
            assert monitor.assess(issuer, reading(value)).ok

    def test_outlier_flagged_after_warmup(self):
        monitor = ReadingQualityMonitor(min_samples=8, z_threshold=5.0)
        self._warm_monitor(monitor, [24.0 + 0.1 * (i % 5) for i in range(10)])
        verdict = monitor.assess(ISSUER, reading(80.0))
        assert not verdict.ok
        assert verdict.z_score is not None
        assert abs(verdict.z_score) > 5.0

    def test_no_statistical_screen_before_min_samples(self):
        monitor = ReadingQualityMonitor(min_samples=8)
        self._warm_monitor(monitor, [24.0, 24.1, 24.2])
        # Wild but physically possible: passes (not enough history).
        assert monitor.assess(ISSUER, reading(120.0)).ok

    def test_normal_variation_passes(self):
        monitor = ReadingQualityMonitor()
        sensor = TemperatureSensor(seed=5)
        for t in range(200):
            assert monitor.assess(ISSUER, sensor.read(float(t))).ok
        assert monitor.readings_flagged == 0

    def test_flagged_readings_do_not_poison_window(self):
        """An attacker cannot drag the statistics by injecting outliers:
        rejected values never enter the window."""
        monitor = ReadingQualityMonitor(min_samples=8, z_threshold=5.0)
        self._warm_monitor(monitor, [24.0 + 0.1 * (i % 5) for i in range(10)])
        for _ in range(5):
            assert not monitor.assess(ISSUER, reading(80.0)).ok
        # The stream statistics still reflect the honest baseline.
        assert not monitor.assess(ISSUER, reading(79.0)).ok

    def test_streams_are_independent(self):
        monitor = ReadingQualityMonitor(min_samples=8, z_threshold=5.0)
        self._warm_monitor(monitor, [24.0 + 0.1 * (i % 5) for i in range(10)])
        # A different issuer has no history: same value passes for it.
        assert monitor.assess(OTHER, reading(80.0)).ok

    def test_constant_stream_jump_flagged(self):
        monitor = ReadingQualityMonitor(min_samples=4)
        for _ in range(6):
            assert monitor.assess(ISSUER, reading(1.0, "machine-status")).ok
        verdict = monitor.assess(ISSUER, reading(3.0, "machine-status"))
        assert not verdict.ok
        assert "constant stream" in verdict.reason

    def test_stream_sample_count(self):
        monitor = ReadingQualityMonitor()
        monitor.assess(ISSUER, reading(24.0))
        monitor.assess(ISSUER, reading(24.1))
        assert monitor.stream_sample_count(ISSUER, "temperature") == 2
        assert monitor.stream_sample_count(ISSUER, "humidity") == 0


class TestParameters:
    @pytest.mark.parametrize("kwargs", [
        {"window": 1},
        {"z_threshold": 0.0},
        {"min_samples": 1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ReadingQualityMonitor(**kwargs)

    def test_default_limits_cover_builtin_sensors(self):
        from repro.devices.sensors import SENSOR_TYPES
        assert set(DEFAULT_ABSOLUTE_LIMITS) == set(SENSOR_TYPES)


class TestGatewayIntegration:
    def test_bad_data_device_punished_via_credit(self):
        """End to end: a gateway with a quality monitor raises a faulty
        device's PoW difficulty through the credit mechanism."""
        import random as random_module
        from repro.core.biot import BIoTConfig, BIoTSystem
        from repro.devices.sensors import Sensor

        class FaultySensor(Sensor):
            sensor_type = "temperature"
            unit = "celsius"
            sensitive = False

            def _sample(self, index):
                if index > 10 and index % 4 == 0:
                    return 400.0  # physically impossible
                return 24.0 + self._rng.gauss(0.0, 0.2)

        system = BIoTSystem.build(BIoTConfig(
            device_count=2, gateway_count=1, seed=71,
            initial_difficulty=6, report_interval=1.0,
        ))
        gateway = system.gateways[0]
        monitor = ReadingQualityMonitor()
        gateway.quality_monitor = monitor
        faulty = system.devices[0]
        faulty.sensor = FaultySensor(seed=1)
        honest = system.devices[1]
        system.initialize()
        faulty.start()
        honest.start()
        system.run_for(90.0)

        assert monitor.readings_flagged > 0
        registry = gateway.consensus.registry
        history = registry._history[faulty.keypair.node_id]
        assert any(kind == BAD_DATA_BEHAVIOUR for _, kind in history.malicious)
        # The faulty device's difficulty rose above the initial level...
        assert max(faulty.stats.assigned_difficulties) > 6
        # ...while the honest device is unaffected.
        assert max(honest.stats.assigned_difficulties[5:]) <= 6
