"""Tests for repro.core.credit (Eqns. 2-5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.credit import (
    CreditParameters,
    CreditRegistry,
    MaliciousBehaviour,
)

NODE = b"\x01" * 32
OTHER = b"\x02" * 32


class TestParameters:
    def test_paper_defaults(self):
        params = CreditParameters()
        assert params.lambda1 == 1.0
        assert params.lambda2 == 0.5
        assert params.delta_t == 30.0
        assert params.punishment_coefficient(MaliciousBehaviour.LAZY_TIPS) == 0.5
        assert params.punishment_coefficient(
            MaliciousBehaviour.DOUBLE_SPENDING) == 1.0

    def test_unknown_behaviour_gets_harshest_alpha(self):
        params = CreditParameters()
        assert params.punishment_coefficient("novel-attack") == 1.0

    @pytest.mark.parametrize("kwargs", [
        {"lambda1": -1.0},
        {"lambda2": -0.5},
        {"delta_t": 0.0},
        {"min_elapsed": 0.0},
        {"alpha": (("lazy-tips", -1.0),)},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            CreditParameters(**kwargs)


class TestPositiveCredit:
    def test_unknown_node_is_zero(self):
        registry = CreditRegistry()
        assert registry.positive_credit(NODE, 100.0) == 0.0

    def test_eqn3_with_unit_weights(self):
        registry = CreditRegistry()
        for t in (1.0, 2.0, 3.0):
            registry.record_transaction(NODE, bytes(32), t)
        # CrP = sum(w_k)/dT = 3/30
        assert registry.positive_credit(NODE, 10.0) == pytest.approx(0.1)

    def test_window_excludes_old_transactions(self):
        registry = CreditRegistry()
        registry.record_transaction(NODE, bytes(32), 0.0)
        registry.record_transaction(NODE, bytes(32), 50.0)
        # At t=60, only the t=50 record lies inside [30, 60].
        assert registry.positive_credit(NODE, 60.0) == pytest.approx(1 / 30)

    def test_window_excludes_future_transactions(self):
        registry = CreditRegistry()
        registry.record_transaction(NODE, bytes(32), 100.0)
        assert registry.positive_credit(NODE, 50.0) == 0.0

    def test_inactive_node_decays_to_zero(self):
        registry = CreditRegistry()
        registry.record_transaction(NODE, bytes(32), 1.0)
        assert registry.positive_credit(NODE, 1.0) > 0
        assert registry.positive_credit(NODE, 100.0) == 0.0

    def test_weight_provider_scales_credit(self):
        weights = {b"\xaa" * 32: 5}
        registry = CreditRegistry(weight_provider=weights.__getitem__)
        registry.record_transaction(NODE, b"\xaa" * 32, 1.0)
        assert registry.positive_credit(NODE, 2.0) == pytest.approx(5 / 30)

    def test_weight_provider_keyerror_falls_back_to_one(self):
        registry = CreditRegistry(weight_provider={}.__getitem__)
        registry.record_transaction(NODE, b"\xbb" * 32, 1.0)
        assert registry.positive_credit(NODE, 2.0) == pytest.approx(1 / 30)

    def test_set_weight_provider_after_construction(self):
        registry = CreditRegistry()
        registry.record_transaction(NODE, b"\xcc" * 32, 1.0)
        registry.set_weight_provider(lambda h: 3)
        assert registry.positive_credit(NODE, 2.0) == pytest.approx(3 / 30)

    def test_weight_capped_at_max_transaction_weight(self):
        registry = CreditRegistry(CreditParameters(max_transaction_weight=5.0))
        registry.set_weight_provider(lambda h: 1000)
        registry.record_transaction(NODE, b"\xdd" * 32, 1.0)
        # Eqn. 3 uses the capped weight, not the raw cumulative weight.
        assert registry.positive_credit(NODE, 2.0) == pytest.approx(5 / 30)

    def test_max_transaction_weight_validated(self):
        with pytest.raises(ValueError):
            CreditParameters(max_transaction_weight=0.0)


class TestNegativeCredit:
    def test_no_events_is_zero(self):
        assert CreditRegistry().negative_credit(NODE, 10.0) == 0.0

    def test_eqn4_single_event(self):
        registry = CreditRegistry()
        registry.record_malicious(NODE, MaliciousBehaviour.DOUBLE_SPENDING, 10.0)
        # CrN = -alpha * dT/(t - t_k) = -1 * 30/10 = -3 at t=20.
        assert registry.negative_credit(NODE, 20.0) == pytest.approx(-3.0)

    def test_lazy_tips_half_penalty(self):
        registry = CreditRegistry()
        registry.record_malicious(NODE, MaliciousBehaviour.LAZY_TIPS, 10.0)
        assert registry.negative_credit(NODE, 20.0) == pytest.approx(-1.5)

    def test_min_elapsed_clamps_divergence(self):
        registry = CreditRegistry(CreditParameters(min_elapsed=0.5))
        registry.record_malicious(NODE, MaliciousBehaviour.DOUBLE_SPENDING, 10.0)
        at_event = registry.negative_credit(NODE, 10.0)
        assert at_event == pytest.approx(-60.0)  # 30/0.5

    def test_penalty_decays_but_never_vanishes(self):
        registry = CreditRegistry()
        registry.record_malicious(NODE, MaliciousBehaviour.DOUBLE_SPENDING, 0.0)
        early = registry.negative_credit(NODE, 1.0)
        late = registry.negative_credit(NODE, 10_000.0)
        assert early < late < 0.0

    def test_penalties_accumulate(self):
        registry = CreditRegistry()
        registry.record_malicious(NODE, MaliciousBehaviour.DOUBLE_SPENDING, 0.0)
        one = registry.negative_credit(NODE, 10.0)
        registry.record_malicious(NODE, MaliciousBehaviour.DOUBLE_SPENDING, 5.0)
        two = registry.negative_credit(NODE, 10.0)
        assert two < one

    def test_future_events_ignored(self):
        registry = CreditRegistry()
        registry.record_malicious(NODE, MaliciousBehaviour.LAZY_TIPS, 100.0)
        assert registry.negative_credit(NODE, 50.0) == 0.0


class TestCombinedCredit:
    def test_eqn2_composition(self):
        params = CreditParameters(lambda1=1.0, lambda2=0.5)
        registry = CreditRegistry(params)
        registry.record_transaction(NODE, bytes(32), 9.0)
        registry.record_malicious(NODE, MaliciousBehaviour.DOUBLE_SPENDING, 5.0)
        now = 10.0
        expected = (1.0 * registry.positive_credit(NODE, now)
                    + 0.5 * registry.negative_credit(NODE, now))
        assert registry.credit(NODE, now) == pytest.approx(expected)

    def test_lambda2_strictness(self):
        lenient = CreditRegistry(CreditParameters(lambda2=0.1))
        strict = CreditRegistry(CreditParameters(lambda2=2.0))
        for registry in (lenient, strict):
            registry.record_malicious(NODE, MaliciousBehaviour.LAZY_TIPS, 0.0)
        assert strict.credit(NODE, 10.0) < lenient.credit(NODE, 10.0)

    def test_nodes_are_independent(self):
        registry = CreditRegistry()
        registry.record_malicious(NODE, MaliciousBehaviour.LAZY_TIPS, 0.0)
        registry.record_transaction(OTHER, bytes(32), 5.0)
        assert registry.credit(NODE, 10.0) < 0
        assert registry.credit(OTHER, 10.0) > 0

    def test_breakdown_consistent(self):
        registry = CreditRegistry()
        registry.record_transaction(NODE, bytes(32), 9.0)
        registry.record_malicious(NODE, MaliciousBehaviour.LAZY_TIPS, 5.0)
        breakdown = registry.breakdown(NODE, 10.0)
        assert breakdown.credit == pytest.approx(registry.credit(NODE, 10.0))
        assert breakdown.positive == pytest.approx(
            registry.positive_credit(NODE, 10.0))
        assert breakdown.negative == pytest.approx(
            registry.negative_credit(NODE, 10.0))
        assert breakdown.active_transactions == 1
        assert breakdown.malicious_events == 1

    @given(st.floats(min_value=0.0, max_value=1000.0))
    @settings(max_examples=30)
    def test_property_credit_without_malice_non_negative(self, now):
        registry = CreditRegistry()
        registry.record_transaction(NODE, bytes(32), 5.0)
        assert registry.credit(NODE, now) >= 0.0


class TestBookkeeping:
    def test_counts(self):
        registry = CreditRegistry()
        registry.record_transaction(NODE, bytes(32), 1.0)
        registry.record_transaction(NODE, bytes(32), 2.0)
        registry.record_malicious(NODE, MaliciousBehaviour.LAZY_TIPS, 3.0)
        assert registry.transaction_count(NODE) == 2
        assert registry.malicious_count(NODE) == 1
        assert registry.transaction_count(OTHER) == 0

    def test_known_nodes(self):
        registry = CreditRegistry()
        registry.record_transaction(OTHER, bytes(32), 1.0)
        registry.record_transaction(NODE, bytes(32), 1.0)
        assert registry.known_nodes() == sorted([NODE, OTHER])

    def test_forget_before_prunes_transactions_only(self):
        registry = CreditRegistry()
        registry.record_transaction(NODE, bytes(32), 1.0)
        registry.record_transaction(NODE, bytes(32), 50.0)
        registry.record_malicious(NODE, MaliciousBehaviour.LAZY_TIPS, 1.0)
        dropped = registry.forget_before(NODE, 40.0)
        assert dropped == 1
        assert registry.transaction_count(NODE) == 1
        # Malicious history survives pruning (Eqn. 4 never forgets).
        assert registry.malicious_count(NODE) == 1
        assert registry.negative_credit(NODE, 60.0) < 0

    def test_forget_before_unknown_node(self):
        assert CreditRegistry().forget_before(NODE, 10.0) == 0
