"""Property-based tests on the credit model and difficulty policies.

These pin the *qualitative laws* the mechanism's security argument
rests on, over randomly generated behaviour histories:

* CrP is non-negative; CrN is non-positive; Eqn. 2 composes linearly;
* penalties decay monotonically but never reach zero;
* more malice never helps: credit is monotone non-increasing in the
  set of malicious events;
* difficulty policies are monotone non-increasing in credit.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.consensus import (
    FixedDifficultyPolicy,
    InverseDifficultyPolicy,
    LinearDifficultyPolicy,
)
from repro.core.credit import CreditParameters, CreditRegistry, MaliciousBehaviour

NODE = b"\x09" * 32

timestamps = st.lists(
    st.floats(min_value=0.0, max_value=500.0), min_size=0, max_size=20)
behaviours = st.sampled_from([
    MaliciousBehaviour.LAZY_TIPS,
    MaliciousBehaviour.DOUBLE_SPENDING,
    MaliciousBehaviour.BAD_DATA,
])


def registry_with(tx_times, malice):
    registry = CreditRegistry()
    for t in tx_times:
        registry.record_transaction(NODE, bytes(32), t)
    for t, kind in malice:
        registry.record_malicious(NODE, kind, t)
    return registry


class TestCreditLaws:
    @given(tx_times=timestamps,
           now=st.floats(min_value=0.0, max_value=600.0))
    @settings(max_examples=50)
    def test_components_signed_correctly(self, tx_times, now):
        registry = registry_with(tx_times, [])
        assert registry.positive_credit(NODE, now) >= 0.0
        assert registry.negative_credit(NODE, now) == 0.0

    @given(tx_times=timestamps,
           malice_times=st.lists(
               st.tuples(st.floats(min_value=0.0, max_value=500.0),
                         behaviours), max_size=5),
           now=st.floats(min_value=0.0, max_value=600.0))
    @settings(max_examples=50)
    def test_eqn2_linear_composition(self, tx_times, malice_times, now):
        registry = registry_with(tx_times, malice_times)
        params = registry.params
        assert registry.credit(NODE, now) == pytest.approx(
            params.lambda1 * registry.positive_credit(NODE, now)
            + params.lambda2 * registry.negative_credit(NODE, now))

    @given(attack_time=st.floats(min_value=0.0, max_value=100.0),
           delta=st.floats(min_value=0.1, max_value=1000.0))
    @settings(max_examples=50)
    def test_penalty_decays_but_never_vanishes(self, attack_time, delta):
        registry = registry_with([], [(attack_time,
                                       MaliciousBehaviour.DOUBLE_SPENDING)])
        early = registry.negative_credit(NODE, attack_time + 0.1)
        later = registry.negative_credit(NODE, attack_time + 0.1 + delta)
        assert early <= later < 0.0

    @given(tx_times=timestamps,
           malice=st.lists(st.tuples(
               st.floats(min_value=0.0, max_value=100.0), behaviours),
               min_size=0, max_size=5),
           extra=st.tuples(st.floats(min_value=0.0, max_value=100.0),
                           behaviours),
           now=st.floats(min_value=100.0, max_value=200.0))
    @settings(max_examples=50)
    def test_more_malice_never_helps(self, tx_times, malice, extra, now):
        base = registry_with(tx_times, malice)
        worse = registry_with(tx_times, malice + [extra])
        assert worse.credit(NODE, now) <= base.credit(NODE, now) + 1e-9

    @given(tx_times=timestamps,
           extra=st.floats(min_value=0.0, max_value=100.0),
           now=st.floats(min_value=100.0, max_value=200.0))
    @settings(max_examples=50)
    def test_more_activity_never_hurts(self, tx_times, extra, now):
        base = registry_with(tx_times, [])
        better = registry_with(tx_times + [extra], [])
        assert better.credit(NODE, now) >= base.credit(NODE, now) - 1e-9


POLICIES = [
    FixedDifficultyPolicy(11),
    LinearDifficultyPolicy(),
    InverseDifficultyPolicy(),
    InverseDifficultyPolicy(negative_mode="inverse"),
    InverseDifficultyPolicy(credit_scale=3.0, punish_bits=2.0),
]


class TestPolicyLaws:
    @given(a=st.floats(min_value=-100.0, max_value=100.0),
           b=st.floats(min_value=-100.0, max_value=100.0))
    @settings(max_examples=60)
    @pytest.mark.parametrize("policy", POLICIES,
                             ids=lambda p: type(p).__name__ + getattr(
                                 p, "negative_mode", ""))
    def test_monotone_non_increasing_in_credit(self, policy, a, b):
        low, high = sorted((a, b))
        assert policy.difficulty_for(low) >= policy.difficulty_for(high)

    @given(credit=st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=60)
    @pytest.mark.parametrize("policy", POLICIES,
                             ids=lambda p: type(p).__name__ + getattr(
                                 p, "negative_mode", ""))
    def test_always_within_clamps(self, policy, credit):
        difficulty = policy.difficulty_for(credit)
        assert 1 <= difficulty <= 256
        if hasattr(policy, "min_difficulty"):
            assert (policy.min_difficulty <= difficulty
                    <= policy.max_difficulty)
