"""Tests for repro.core.acl (device authorisation, Eqn. 1)."""

import pytest

from repro.core.acl import (
    AclAction,
    AclPayload,
    AuthorizationList,
    GenesisConfig,
    Role,
)
from repro.crypto.keys import KeyPair
from repro.tangle.errors import MalformedPayloadError, UnauthorizedIssuerError
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction, TransactionKind

MANAGER = KeyPair.generate(seed=b"acl-manager")
DEVICE = KeyPair.generate(seed=b"acl-device")
INTRUDER = KeyPair.generate(seed=b"acl-intruder")


def make_genesis(**kwargs):
    config = GenesisConfig(manager=MANAGER.public, **kwargs)
    return Transaction.create_genesis(MANAGER, payload=config.to_bytes())


def acl_tx(signer, payload, *, parents, timestamp=1.0):
    return Transaction.create(
        signer, kind=TransactionKind.ACL, payload=payload.to_bytes(),
        timestamp=timestamp, branch=parents, trunk=parents, difficulty=1,
    )


class TestGenesisConfig:
    def test_roundtrip(self):
        config = GenesisConfig(
            manager=MANAGER.public,
            network_name="factory-7",
            token_allocations=((DEVICE.node_id, 500),),
        )
        restored = GenesisConfig.from_bytes(config.to_bytes())
        assert restored == config

    def test_from_genesis(self):
        genesis = make_genesis(network_name="plant-a")
        config = GenesisConfig.from_genesis(genesis)
        assert config.manager == MANAGER.public
        assert config.network_name == "plant-a"

    def test_from_non_genesis_rejected(self):
        genesis = make_genesis()
        tx = Transaction.create(
            MANAGER, kind="data", payload=b"", timestamp=1.0,
            branch=genesis.tx_hash, trunk=genesis.tx_hash, difficulty=1,
        )
        with pytest.raises(ValueError):
            GenesisConfig.from_genesis(tx)

    def test_garbage_payload_rejected(self):
        with pytest.raises(MalformedPayloadError):
            GenesisConfig.from_bytes(b"not a config")


class TestAclPayload:
    def test_roundtrip(self):
        payload = AclPayload(
            action=AclAction.AUTHORIZE, role=Role.DEVICE,
            identities=(DEVICE.public, INTRUDER.public),
        )
        assert AclPayload.from_bytes(payload.to_bytes()) == payload

    def test_validation(self):
        with pytest.raises(ValueError):
            AclPayload(action="grant", role=Role.DEVICE,
                       identities=(DEVICE.public,))
        with pytest.raises(ValueError):
            AclPayload(action=AclAction.AUTHORIZE, role="admin",
                       identities=(DEVICE.public,))
        with pytest.raises(ValueError):
            AclPayload(action=AclAction.AUTHORIZE, role=Role.DEVICE,
                       identities=())

    def test_garbage_rejected(self):
        with pytest.raises(MalformedPayloadError):
            AclPayload.from_bytes(b"\xff\xfe")


class TestAuthorizationList:
    def test_manager_implicitly_authorized(self):
        acl = AuthorizationList(MANAGER.public)
        assert acl.is_authorized(MANAGER.node_id)
        assert not acl.is_authorized(DEVICE.node_id)

    def test_authorize_devices(self):
        acl = AuthorizationList(MANAGER.public)
        genesis = make_genesis()
        update = AuthorizationList.make_update([DEVICE.public])
        acl.apply(acl_tx(MANAGER, update, parents=genesis.tx_hash))
        assert acl.is_authorized(DEVICE.node_id)
        assert acl.is_authorized_device(DEVICE.node_id)
        assert acl.authorized_devices() == [DEVICE.node_id]
        assert acl.updates_applied == 1

    def test_deauthorize(self):
        acl = AuthorizationList(MANAGER.public)
        genesis = make_genesis()
        acl.apply(acl_tx(MANAGER, AuthorizationList.make_update([DEVICE.public]),
                         parents=genesis.tx_hash))
        acl.apply(acl_tx(
            MANAGER,
            AuthorizationList.make_update([DEVICE.public],
                                          action=AclAction.DEAUTHORIZE),
            parents=genesis.tx_hash, timestamp=2.0,
        ))
        assert not acl.is_authorized(DEVICE.node_id)

    def test_gateway_registration_separate_role(self):
        acl = AuthorizationList(MANAGER.public)
        genesis = make_genesis()
        acl.apply(acl_tx(
            MANAGER,
            AuthorizationList.make_update([DEVICE.public], role=Role.GATEWAY),
            parents=genesis.tx_hash,
        ))
        assert acl.is_registered_gateway(DEVICE.node_id)
        assert not acl.is_authorized_device(DEVICE.node_id)
        assert acl.is_authorized(DEVICE.node_id)  # any role grants access

    def test_non_manager_update_rejected(self):
        acl = AuthorizationList(MANAGER.public)
        genesis = make_genesis()
        forged = acl_tx(INTRUDER,
                        AuthorizationList.make_update([INTRUDER.public]),
                        parents=genesis.tx_hash)
        with pytest.raises(UnauthorizedIssuerError):
            acl.apply(forged)
        assert not acl.is_authorized(INTRUDER.node_id)

    def test_apply_non_acl_rejected(self):
        acl = AuthorizationList(MANAGER.public)
        genesis = make_genesis()
        data = Transaction.create(
            MANAGER, kind="data", payload=b"x", timestamp=1.0,
            branch=genesis.tx_hash, trunk=genesis.tx_hash, difficulty=1,
        )
        with pytest.raises(MalformedPayloadError):
            acl.apply(data)

    def test_identity_lookup(self):
        acl = AuthorizationList(MANAGER.public)
        genesis = make_genesis()
        acl.apply(acl_tx(MANAGER, AuthorizationList.make_update([DEVICE.public]),
                         parents=genesis.tx_hash))
        assert acl.identity_for(DEVICE.node_id) == DEVICE.public
        assert acl.identity_for(MANAGER.node_id) == MANAGER.public
        assert acl.identity_for(b"\x00" * 32) is None


class TestMultiManager:
    SECOND = KeyPair.generate(seed=b"acl-second-manager")

    def _acl(self):
        return AuthorizationList(MANAGER.public, (self.SECOND.public,))

    def test_both_managers_recognised(self):
        acl = self._acl()
        assert acl.is_manager(MANAGER.node_id)
        assert acl.is_manager(self.SECOND.node_id)
        assert not acl.is_manager(INTRUDER.node_id)
        assert acl.is_authorized(self.SECOND.node_id)

    def test_second_manager_can_publish_updates(self):
        acl = self._acl()
        genesis = make_genesis()
        update = acl_tx(self.SECOND,
                        AuthorizationList.make_update([DEVICE.public]),
                        parents=genesis.tx_hash)
        acl.apply(update)
        assert acl.is_authorized_device(DEVICE.node_id)

    def test_intruder_still_rejected(self):
        acl = self._acl()
        genesis = make_genesis()
        forged = acl_tx(INTRUDER,
                        AuthorizationList.make_update([INTRUDER.public]),
                        parents=genesis.tx_hash)
        with pytest.raises(UnauthorizedIssuerError):
            acl.apply(forged)

    def test_genesis_config_roundtrips_extra_managers(self):
        config = GenesisConfig(
            manager=MANAGER.public,
            extra_managers=(self.SECOND.public,),
        )
        restored = GenesisConfig.from_bytes(config.to_bytes())
        assert restored.extra_managers == (self.SECOND.public,)
        assert len(restored.all_managers) == 2

    def test_from_genesis_carries_extras(self):
        config = GenesisConfig(manager=MANAGER.public,
                               extra_managers=(self.SECOND.public,))
        genesis = Transaction.create_genesis(MANAGER,
                                             payload=config.to_bytes())
        acl = AuthorizationList.from_genesis(genesis)
        assert acl.is_manager(self.SECOND.node_id)

    def test_identity_lookup_includes_extras(self):
        acl = self._acl()
        assert acl.identity_for(self.SECOND.node_id) == self.SECOND.public


class TestValidatorIntegration:
    def test_validator_blocks_unauthorized_data(self):
        genesis = make_genesis()
        acl = AuthorizationList.from_genesis(genesis)
        tangle = Tangle(genesis, validators=[acl.validator])
        rogue = Transaction.create(
            INTRUDER, kind="data", payload=b"x", timestamp=1.0,
            branch=genesis.tx_hash, trunk=genesis.tx_hash, difficulty=1,
        )
        with pytest.raises(UnauthorizedIssuerError):
            tangle.attach(rogue)

    def test_validator_allows_after_authorization(self):
        genesis = make_genesis()
        acl = AuthorizationList.from_genesis(genesis)
        tangle = Tangle(genesis, validators=[acl.validator])
        update = acl_tx(MANAGER, AuthorizationList.make_update([DEVICE.public]),
                        parents=genesis.tx_hash)
        tangle.attach(update)
        acl.apply(update)
        data = Transaction.create(
            DEVICE, kind="data", payload=b"x", timestamp=2.0,
            branch=update.tx_hash, trunk=update.tx_hash, difficulty=1,
        )
        tangle.attach(data)
        assert data.tx_hash in tangle

    def test_validator_blocks_forged_acl(self):
        genesis = make_genesis()
        acl = AuthorizationList.from_genesis(genesis)
        tangle = Tangle(genesis, validators=[acl.validator])
        forged = acl_tx(INTRUDER,
                        AuthorizationList.make_update([INTRUDER.public]),
                        parents=genesis.tx_hash)
        with pytest.raises(UnauthorizedIssuerError):
            tangle.attach(forged)

    def test_from_tangle_replays_history(self):
        genesis = make_genesis()
        tangle = Tangle(genesis)
        update = acl_tx(MANAGER, AuthorizationList.make_update([DEVICE.public]),
                        parents=genesis.tx_hash)
        tangle.attach(update)
        acl = AuthorizationList.from_tangle(tangle)
        assert acl.is_authorized_device(DEVICE.node_id)
        assert acl.updates_applied == 1
