"""Tests for repro.core.authority (Fig. 4 protocol + data protection)."""

import pytest

from repro.core.authority import (
    DEFAULT_GROUP,
    BadSignatureError,
    DataProtector,
    DeviceKeyAgent,
    ManagerKeyDistributor,
    ProtocolStateError,
    ReplayError,
    StaleTimestampError,
    symmetric_decrypt,
    symmetric_encrypt,
)
from repro.crypto.keys import KeyPair
from repro.devices.sensors import PowerMeterSensor, SensorReading, TemperatureSensor

MANAGER = KeyPair.generate(seed=b"authority-manager")
DEVICE = KeyPair.generate(seed=b"authority-device")
INTRUDER = KeyPair.generate(seed=b"authority-intruder")


def run_handshake(manager=None, device=None, *, group=DEFAULT_GROUP,
                  start=10.0):
    manager = manager or ManagerKeyDistributor(MANAGER)
    device = device or DeviceKeyAgent(DEVICE, MANAGER.public)
    session, m1 = manager.initiate(DEVICE.public, now=start, group=group)
    m2 = device.handle_m1(m1, now=start + 0.1)
    m3 = manager.handle_m2(session, m2, now=start + 0.2)
    installed = device.handle_m3(m3, now=start + 0.3)
    return manager, device, session, installed


class TestSymmetricEnvelope:
    KEY = bytes(range(32))

    def test_roundtrip(self):
        envelope = symmetric_encrypt(self.KEY, b"payload")
        assert symmetric_decrypt(self.KEY, envelope) == b"payload"

    def test_tamper_detected(self):
        envelope = bytearray(symmetric_encrypt(self.KEY, b"payload"))
        envelope[10] ^= 0x01
        with pytest.raises(BadSignatureError):
            symmetric_decrypt(self.KEY, bytes(envelope))

    def test_wrong_key_detected(self):
        envelope = symmetric_encrypt(self.KEY, b"payload")
        with pytest.raises(BadSignatureError):
            symmetric_decrypt(bytes(32), envelope)

    def test_short_envelope_rejected(self):
        with pytest.raises(BadSignatureError):
            symmetric_decrypt(self.KEY, b"tiny")

    def test_key_size_checked(self):
        with pytest.raises(ValueError):
            symmetric_encrypt(b"short", b"x")
        with pytest.raises(ValueError):
            symmetric_decrypt(b"short", bytes(48))


class TestKeyDistributionHappyPath:
    def test_full_handshake(self):
        manager, device, session, installed = run_handshake()
        assert installed == DEFAULT_GROUP
        assert manager.is_completed(session)
        assert device.key_for() == manager.group_key()
        assert manager.completed_distributions == 1
        assert device.installed_groups == (DEFAULT_GROUP,)

    def test_group_key_generated_once(self):
        manager = ManagerKeyDistributor(MANAGER)
        assert manager.group_key("g") == manager.group_key("g")
        assert manager.group_key("g") != manager.group_key("h")

    def test_multiple_devices_share_group_key(self):
        manager = ManagerKeyDistributor(MANAGER)
        other_keys = KeyPair.generate(seed=b"authority-device-2")
        device_a = DeviceKeyAgent(DEVICE, MANAGER.public)
        device_b = DeviceKeyAgent(other_keys, MANAGER.public)
        for device, keys in ((device_a, DEVICE), (device_b, other_keys)):
            session, m1 = manager.initiate(keys.public, now=1.0)
            m2 = device.handle_m1(m1, now=1.1)
            m3 = manager.handle_m2(session, m2, now=1.2)
            device.handle_m3(m3, now=1.3)
        assert device_a.key_for() == device_b.key_for()

    def test_rotation_changes_key(self):
        manager, device, _, _ = run_handshake()
        old = manager.group_key()
        new = manager.rotate_group_key()
        assert new != old
        # The device still holds the old key until it re-runs Fig. 4.
        assert device.key_for() == old

    def test_custom_group(self):
        _, device, _, installed = run_handshake(group="lab-secrets")
        assert installed == "lab-secrets"
        assert device.key_for("lab-secrets") is not None
        assert device.key_for(DEFAULT_GROUP) is None


class TestKeyDistributionAttacks:
    def test_m1_from_intruder_rejected(self):
        # An intruder who knows the device's public key but not the
        # manager's secret key cannot fake M1.
        fake_manager = ManagerKeyDistributor(INTRUDER)
        device = DeviceKeyAgent(DEVICE, MANAGER.public)
        _, m1 = fake_manager.initiate(DEVICE.public, now=1.0)
        with pytest.raises(BadSignatureError):
            device.handle_m1(m1, now=1.1)

    def test_m1_for_other_device_rejected(self):
        manager = ManagerKeyDistributor(MANAGER)
        _, m1 = manager.initiate(INTRUDER.public, now=1.0)
        device = DeviceKeyAgent(DEVICE, MANAGER.public)
        with pytest.raises(BadSignatureError):
            device.handle_m1(m1, now=1.1)

    def test_stale_m1_rejected(self):
        manager = ManagerKeyDistributor(MANAGER)
        device = DeviceKeyAgent(DEVICE, MANAGER.public)
        _, m1 = manager.initiate(DEVICE.public, now=1.0)
        with pytest.raises(StaleTimestampError):
            device.handle_m1(m1, now=100.0)

    def test_replayed_m1_rejected(self):
        manager = ManagerKeyDistributor(MANAGER)
        device = DeviceKeyAgent(DEVICE, MANAGER.public)
        _, m1 = manager.initiate(DEVICE.public, now=1.0)
        device.handle_m1(m1, now=1.1)
        with pytest.raises(ReplayError):
            device.handle_m1(m1, now=1.2)

    def test_tampered_m2_rejected(self):
        manager = ManagerKeyDistributor(MANAGER)
        device = DeviceKeyAgent(DEVICE, MANAGER.public)
        session, m1 = manager.initiate(DEVICE.public, now=1.0)
        m2 = bytearray(device.handle_m1(m1, now=1.1))
        m2[12] ^= 0x01
        with pytest.raises(BadSignatureError):
            manager.handle_m2(session, bytes(m2), now=1.2)

    def test_m2_unknown_session_rejected(self):
        manager = ManagerKeyDistributor(MANAGER)
        with pytest.raises(ProtocolStateError):
            manager.handle_m2(b"bogus-session", b"m2", now=1.0)

    def test_m2_after_completion_rejected(self):
        manager, device, session, _ = run_handshake()
        _, m1 = manager.initiate(DEVICE.public, now=20.0)
        m2 = device.handle_m1(m1, now=20.1)
        with pytest.raises(ProtocolStateError):
            manager.handle_m2(session, m2, now=20.2)

    def test_stale_m2_rejected(self):
        manager = ManagerKeyDistributor(MANAGER)
        device = DeviceKeyAgent(DEVICE, MANAGER.public)
        session, m1 = manager.initiate(DEVICE.public, now=1.0)
        m2 = device.handle_m1(m1, now=1.1)
        with pytest.raises(StaleTimestampError):
            manager.handle_m2(session, m2, now=60.0)

    def test_m3_without_pending_session_rejected(self):
        device = DeviceKeyAgent(DEVICE, MANAGER.public)
        with pytest.raises(ProtocolStateError):
            device.handle_m3(symmetric_encrypt(bytes(32), b"junk"), now=1.0)

    def test_key_not_installed_before_m3(self):
        manager = ManagerKeyDistributor(MANAGER)
        device = DeviceKeyAgent(DEVICE, MANAGER.public)
        _, m1 = manager.initiate(DEVICE.public, now=1.0)
        device.handle_m1(m1, now=1.1)
        assert device.key_for() is None  # staged, not committed


class TestDataProtector:
    def _protector_pair(self):
        key = ManagerKeyDistributor(MANAGER).group_key()
        return (DataProtector({DEFAULT_GROUP: key}),
                DataProtector({DEFAULT_GROUP: key}))

    def test_sensitive_reading_encrypted(self):
        protector, reader = self._protector_pair()
        reading = PowerMeterSensor(seed=1).read(5.0)
        payload = protector.protect(reading)
        assert DataProtector.is_encrypted(payload)
        assert reader.unprotect(payload) == reading

    def test_non_sensitive_reading_plain(self):
        protector, _ = self._protector_pair()
        reading = TemperatureSensor(seed=1).read(5.0)
        payload = protector.protect(reading)
        assert not DataProtector.is_encrypted(payload)
        # Anyone can read plaintext payloads.
        assert DataProtector().unprotect(payload) == reading

    def test_sensitive_without_key_refused(self):
        reading = PowerMeterSensor(seed=1).read(5.0)
        with pytest.raises(KeyError):
            DataProtector().protect(reading)

    def test_unprotect_without_key_refused(self):
        protector, _ = self._protector_pair()
        payload = protector.protect(PowerMeterSensor(seed=1).read(5.0))
        with pytest.raises(KeyError):
            DataProtector().unprotect(payload)

    def test_tampered_payload_detected(self):
        protector, reader = self._protector_pair()
        payload = bytearray(protector.protect(PowerMeterSensor(seed=1).read(5.0)))
        payload[-1] ^= 0x01
        with pytest.raises(BadSignatureError):
            reader.unprotect(bytes(payload))

    def test_unknown_marker_rejected(self):
        with pytest.raises(ValueError):
            DataProtector().unprotect(b"\x7fjunk")

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            DataProtector().unprotect(b"")

    def test_install_key_validates_size(self):
        with pytest.raises(ValueError):
            DataProtector().install_key("g", b"short")

    def test_has_key(self):
        protector, _ = self._protector_pair()
        assert protector.has_key()
        assert not protector.has_key("other-group")

    def test_end_to_end_with_handshake_key(self):
        manager, device, _, _ = run_handshake()
        protector = DataProtector({DEFAULT_GROUP: device.key_for()})
        authority = DataProtector({DEFAULT_GROUP: manager.group_key()})
        reading = PowerMeterSensor(seed=2).read(8.0)
        assert authority.unprotect(protector.protect(reading)) == reading
