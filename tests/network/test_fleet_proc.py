"""The multi-process differential and the sharded scale workload.

The headline test is the ISSUE's acceptance path shrunk to test size:
three real ``repro node`` processes discover each other through a seed
node, ingest the seeded smart-factory workload, survive a ``kill -9``
plus cold restart of one member, and every process converges to the
*same byte-identical* tangle/ledger/ACL/credit hashes as the in-process
reference node — scraped Prometheus exporters and graceful control-
plane shutdown included.

The sharded-workload tests pin the benchmark harness's correctness
properties (self-contained shards, deterministic generation) without
spawning anything.
"""

import random

from repro.core.credit import CreditParameters
from repro.tangle.transaction import Transaction
from repro.network.differential import _new_consensus
from repro.network.fleet_proc import (
    build_sharded_workload,
    run_proc_differential,
)
from repro.nodes.full_node import FullNode
from repro.storage.differential import node_hashes


class TestProcDifferential:
    def test_three_processes_crash_restart_and_match_reference(
            self, fleet_sandbox):
        result = run_proc_differential(
            seed=11, processes=3, transactions=12,
            run_dir=fleet_sandbox.storage_dir(),
            crash=True, metrics=True)

        assert result["matched"], result
        proc = result["proc"]
        assert proc["converged"]
        assert proc["rejected"] == []
        # Every process independently reached the reference hashes.
        assert set(proc["per_node"]) == {"n0", "n1", "n2"}
        for address, hashes in proc["per_node"].items():
            assert hashes == result["reference"], address

        # The kill -9 / cold-restart really happened, and the journal
        # gave the reborn process a head start.
        crash = proc["crash"]
        assert crash["victim"] == "n2"
        assert crash["killed_at"] < crash["restarted_at"]
        assert crash["restored_records"] >= 1

        # Each process's own exporter answered on its own port.
        assert set(proc["metrics"]) == {"n0", "n1", "n2"}
        ports = set()
        for address, report in proc["metrics"].items():
            assert report["scraped"], (address, report)
            ports.add(report["port"])
        assert len(ports) == 3


class TestShardedWorkload:
    def test_shards_are_self_contained(self):
        workload = build_sharded_workload(seed=4, shards=3,
                                          transactions_per_shard=6)
        assert len(workload.shards) == 3
        assert workload.transactions_per_shard == 6
        # Every shard opens with the same ACL authorization and then
        # ingests cleanly into a *fresh, isolated* node — the property
        # that lets N processes run shards with zero coordination.
        first = {shard[0] for shard in workload.shards}
        assert len(first) == 1
        for index, shard in enumerate(workload.shards):
            node = FullNode(f"check-{index}", workload.genesis,
                            consensus=_new_consensus(
                                CreditParameters()),
                            rng=random.Random(index), enforce_pow=True)
            for encoded in shard:
                tx = Transaction.from_bytes(encoded)
                assert node.ingest_local(tx), (index, tx.tx_hash)
            assert len(node.tangle) == 1 + len(shard)  # genesis + shard

    def test_generation_is_deterministic_and_seed_sensitive(self):
        again = [build_sharded_workload(seed=4, shards=2,
                                        transactions_per_shard=5)
                 for _ in range(2)]
        assert again[0].shards == again[1].shards
        assert again[0].genesis.to_bytes() == again[1].genesis.to_bytes()
        other = build_sharded_workload(seed=5, shards=2,
                                       transactions_per_shard=5)
        assert other.shards != again[0].shards

    def test_isolated_shard_nodes_diverge_as_designed(self):
        # The bench explicitly measures compute, not convergence: two
        # shards ingested by two isolated nodes end in *different*
        # tangles (only genesis + ACL shared).  Pin that so nobody
        # mistakes the scale bench for a consistency check.
        workload = build_sharded_workload(seed=9, shards=2,
                                          transactions_per_shard=5)
        nodes = []
        for index, shard in enumerate(workload.shards):
            node = FullNode(f"iso-{index}", workload.genesis,
                            consensus=_new_consensus(
                                CreditParameters()),
                            rng=random.Random(index), enforce_pow=True)
            for encoded in shard:
                assert node.ingest_local(Transaction.from_bytes(encoded))
            nodes.append(node)
        hashes = [node_hashes(node, now=100.0) for node in nodes]
        assert hashes[0]["tangle"] != hashes[1]["tangle"]
