"""Tests for repro.network.network (routing, failures, taps)."""

import random

import pytest

from repro.network.network import Network, NetworkNode
from repro.network.simulator import EventScheduler
from repro.network.transport import LatencyModel


class Recorder(NetworkNode):
    """Test node that records everything it receives."""

    def __init__(self, address):
        super().__init__(address)
        self.inbox = []

    def handle_message(self, message):
        self.inbox.append(message)


@pytest.fixture()
def net():
    scheduler = EventScheduler()
    network = Network(scheduler, rng=random.Random(1))
    a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
    for node in (a, b, c):
        network.attach(node)
    return scheduler, network, a, b, c


class TestRouting:
    def test_send_and_deliver(self, net):
        scheduler, network, a, b, _ = net
        assert a.send("b", "ping", {"n": 1})
        scheduler.run()
        assert len(b.inbox) == 1
        assert b.inbox[0].kind == "ping"
        assert b.inbox[0].sender == "a"
        assert network.messages_delivered == 1

    def test_unknown_recipient_dropped(self, net):
        scheduler, network, a, _, _ = net
        assert not a.send("nobody", "ping", None)
        assert network.messages_dropped == 1

    def test_latency_defers_delivery(self, net):
        scheduler, network, a, b, _ = net
        network.set_link("a", "b", LatencyModel(base_latency=2.0))
        a.send("b", "ping", None)
        scheduler.run_until(1.0)
        assert b.inbox == []
        scheduler.run_until(3.0)
        assert len(b.inbox) == 1

    def test_broadcast_reaches_everyone_else(self, net):
        scheduler, network, a, b, c = net
        count = network.broadcast("a", "announce", None)
        scheduler.run()
        assert count == 2
        assert len(b.inbox) == 1 and len(c.inbox) == 1
        assert a.inbox == []

    def test_broadcast_with_recipients(self, net):
        scheduler, network, a, b, c = net
        network.broadcast("a", "x", None, recipients=["c"])
        scheduler.run()
        assert b.inbox == [] and len(c.inbox) == 1

    def test_duplicate_address_rejected(self, net):
        _, network, _, _, _ = net
        with pytest.raises(ValueError):
            network.attach(Recorder("a"))

    def test_unattached_node_cannot_send(self):
        with pytest.raises(RuntimeError):
            Recorder("x").send("y", "k", None)

    def test_addresses_sorted(self, net):
        _, network, _, _, _ = net
        assert network.addresses == ["a", "b", "c"]


class TestFailures:
    def test_down_node_receives_nothing(self, net):
        scheduler, network, a, b, _ = net
        network.take_down("b")
        assert not a.send("b", "ping", None)
        scheduler.run()
        assert b.inbox == []

    def test_down_node_cannot_send(self, net):
        scheduler, network, a, b, _ = net
        network.take_down("a")
        assert not a.send("b", "ping", None)

    def test_crash_during_flight_drops_message(self, net):
        scheduler, network, a, b, _ = net
        network.set_link("a", "b", LatencyModel(base_latency=5.0))
        a.send("b", "ping", None)
        network.take_down("b")
        scheduler.run()
        assert b.inbox == []
        assert network.messages_dropped == 1

    def test_bring_up_restores(self, net):
        scheduler, network, a, b, _ = net
        network.take_down("b")
        network.bring_up("b")
        assert a.send("b", "ping", None)
        scheduler.run()
        assert len(b.inbox) == 1

    def test_cut_link_is_symmetric(self, net):
        scheduler, network, a, b, _ = net
        network.cut_link("a", "b")
        assert not a.send("b", "x", None)
        assert not b.send("a", "x", None)
        network.heal_link("a", "b")
        assert a.send("b", "x", None)

    def test_cut_link_leaves_other_paths(self, net):
        scheduler, network, a, b, c = net
        network.cut_link("a", "b")
        assert a.send("c", "x", None)

    def test_is_down(self, net):
        _, network, _, _, _ = net
        network.take_down("a")
        assert network.is_down("a")
        assert not network.is_down("b")

    def test_take_down_unknown_raises(self, net):
        _, network, _, _, _ = net
        with pytest.raises(KeyError):
            network.take_down("ghost")


class TestObservation:
    def test_tap_sees_deliveries(self, net):
        scheduler, network, a, b, _ = net
        seen = []
        network.add_tap(seen.append)
        a.send("b", "ping", None)
        scheduler.run()
        assert len(seen) == 1
        assert seen[0].kind == "ping"

    def test_tap_does_not_see_drops(self, net):
        scheduler, network, a, b, _ = net
        seen = []
        network.add_tap(seen.append)
        network.take_down("b")
        a.send("b", "ping", None)
        scheduler.run()
        assert seen == []

    def test_received_count(self, net):
        scheduler, network, a, b, _ = net
        a.send("b", "one", None)
        a.send("b", "two", None)
        scheduler.run()
        assert b.received_count == 2

    def test_lossy_link_statistics(self, net):
        scheduler, network, a, b, _ = net
        network.set_link("a", "b", LatencyModel(loss_rate=0.5))
        for _ in range(200):
            a.send("b", "ping", None)
        scheduler.run()
        assert 50 < len(b.inbox) < 150
        assert network.messages_dropped == 200 - len(b.inbox)


class TestInFlightPurge:
    """Cutting a link or downing a node must also kill traffic already
    in the air — a partition that lets queued packets land is not a
    partition."""

    def test_cut_link_purges_in_flight(self, net):
        scheduler, network, a, b, _ = net
        network.set_link("a", "b", LatencyModel(base_latency=2.0))
        a.send("b", "ping", None)
        scheduler.run_until(1.0)  # mid-flight
        network.cut_link("a", "b")
        scheduler.run_until(5.0)
        assert b.inbox == []
        assert network.messages_purged == 1

    def test_take_down_purges_inbound(self, net):
        scheduler, network, a, b, _ = net
        network.set_link("a", "b", LatencyModel(base_latency=2.0))
        a.send("b", "ping", None)
        scheduler.run_until(1.0)
        network.take_down("b")
        network.bring_up("b")
        scheduler.run_until(5.0)
        assert b.inbox == []
        assert network.messages_purged == 1

    def test_purge_spares_unrelated_traffic(self, net):
        scheduler, network, a, b, c = net
        network.set_link("a", "b", LatencyModel(base_latency=2.0))
        network.set_link("a", "c", LatencyModel(base_latency=2.0))
        a.send("b", "ping", None)
        a.send("c", "ping", None)
        scheduler.run_until(1.0)
        network.cut_link("a", "b")
        scheduler.run_until(5.0)
        assert b.inbox == []
        assert len(c.inbox) == 1
        assert network.messages_purged == 1

    def test_delivered_message_not_purged_later(self, net):
        scheduler, network, a, b, _ = net
        a.send("b", "ping", None)
        scheduler.run()
        assert len(b.inbox) == 1
        network.cut_link("a", "b")
        assert network.messages_purged == 0


class TestOverlaysAndRestore:
    def test_duplication_overlay_and_removal(self, net):
        from repro.network.transport import LinkOverlay
        scheduler, network, a, b, _ = net
        token = network.add_overlay(
            "a", "b", LinkOverlay(duplicate_probability=0.9))
        for _ in range(10):
            a.send("b", "ping", None)
        scheduler.run()
        assert len(b.inbox) > 10
        assert network.messages_duplicated == len(b.inbox) - 10
        network.remove_overlay(token)
        duplicated = network.messages_duplicated
        for _ in range(10):
            a.send("b", "ping", None)
        scheduler.run()
        assert network.messages_duplicated == duplicated  # overlay gone

    def test_restore_all_clears_every_fault(self, net):
        from repro.network.transport import LinkOverlay
        scheduler, network, a, b, c = net
        network.cut_link("a", "b")
        network.take_down("c")
        network.add_overlay("a", "b", LinkOverlay(extra_loss=0.99))
        b.clock_offset = 3.0
        network.restore_all()
        assert not network.is_down("c")
        assert b.clock_offset == 0.0
        a.send("b", "ping", None)
        for _ in range(20):
            a.send("b", "bulk", None)
        scheduler.run()
        assert len(b.inbox) == 21  # cut healed AND loss overlay gone
