"""The asyncio/TCP transport: clock/scheduler units, wire delivery,
reverse routes, reconnect-with-backoff, graceful shutdown, framing
hostility, and the ``repro_transport_*`` telemetry.

Synchronous tests throughout (no pytest-asyncio in the environment):
coroutines run on the :class:`~tests.network.fleet.FleetSandbox`'s
dedicated loop with hard teardown.
"""

import asyncio
import random
import time

import pytest

from repro.faults.backoff import BackoffPolicy
from repro.network.aio import (
    AsyncClock,
    AsyncioScheduler,
    AsyncioTransport,
    NodeRunner,
)
from repro.network.base import Transport, is_transport
from repro.network.network import Network, NetworkNode
from repro.network.simulator import EventScheduler
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracer import TraceContext, Tracer

FAST_BACKOFF = BackoffPolicy(base_delay=0.05, multiplier=1.5,
                             max_delay=0.2, jitter=0.0, max_attempts=30)


class Recorder(NetworkNode):
    """Collects deliveries; optionally echoes every ping as a pong."""

    def __init__(self, address, *, echo=False):
        super().__init__(address)
        self.echo = echo
        self.received = []

    def handle_message(self, message):
        self.received.append(message)
        if self.echo and message.kind == "ping":
            self.send(message.sender, "pong", {"re": message.body})


def _transport(scheduler, directory, **kwargs):
    kwargs.setdefault("reconnect_policy", FAST_BACKOFF)
    kwargs.setdefault("rng", random.Random(0))
    return AsyncioTransport(scheduler, directory=directory, **kwargs)


async def _wait_for(predicate, *, timeout=10.0, interval=0.01):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


class TestAsyncClock:
    def test_scales_wall_time(self):
        clock = AsyncClock(time_scale=100.0)
        start = clock.now()
        time.sleep(0.02)
        elapsed = clock.now() - start
        assert elapsed >= 1.0  # 20ms wall * 100

    def test_to_wall_inverts_the_scale(self):
        clock = AsyncClock(time_scale=20.0)
        assert clock.to_wall(10.0) == pytest.approx(0.5)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            AsyncClock(time_scale=0.0)


class TestAsyncioScheduler:
    def test_schedule_fires_and_counts(self, fleet_sandbox):
        async def scenario():
            scheduler = AsyncioScheduler(time_scale=50.0)
            fired = []
            scheduler.schedule(0.5, lambda: fired.append("a"))  # 10ms wall
            assert len(scheduler) == 1
            await asyncio.sleep(0.1)
            return fired, scheduler.events_executed, len(scheduler)

        fired, executed, pending = fleet_sandbox.run(scenario())
        assert fired == ["a"]
        assert executed == 1
        assert pending == 0

    def test_cancel_prevents_firing(self, fleet_sandbox):
        async def scenario():
            scheduler = AsyncioScheduler(time_scale=50.0)
            fired = []
            event_id = scheduler.schedule(0.5, lambda: fired.append("a"))
            scheduler.cancel(event_id)
            await asyncio.sleep(0.05)
            return fired

        assert fleet_sandbox.run(scenario()) == []

    def test_rejects_negative_delay_and_past_timestamps(self,
                                                        fleet_sandbox):
        async def scenario():
            scheduler = AsyncioScheduler()
            with pytest.raises(ValueError):
                scheduler.schedule(-1.0, lambda: None)
            with pytest.raises(ValueError):
                scheduler.schedule_at(scheduler.clock.now() - 5.0,
                                      lambda: None)

        fleet_sandbox.run(scenario())


class TestTransportContract:
    def test_both_transports_satisfy_the_protocol(self):
        sim = Network(EventScheduler())
        assert is_transport(sim)
        assert isinstance(sim, Transport)
        aio = _transport(AsyncioScheduler(), {})
        assert is_transport(aio)
        assert isinstance(aio, Transport)


class TestWireDelivery:
    def test_send_receive_and_reverse_route_reply(self, fleet_sandbox):
        """A connect-only client reaches a listener, and the listener's
        reply rides the reverse route back over the same socket."""
        async def scenario():
            scheduler = AsyncioScheduler(time_scale=20.0)
            directory = {}
            server = Recorder("server", echo=True)
            client = Recorder("client")
            server_runner = NodeRunner(server,
                                       _transport(scheduler, directory),
                                       listen=("127.0.0.1", 0))
            client_transport = _transport(scheduler, directory)
            client_runner = NodeRunner(client, client_transport)
            try:
                await server_runner.start()
                assert server_runner.bound_address is not None
                assert directory["server"] == server_runner.bound_address
                await client_runner.start()
                assert client.send("server", "ping", {"n": 1})
                await _wait_for(lambda: client.received)
                return (server.received[0], client.received[0],
                        client_transport.messages_delivered)
            finally:
                await client_runner.stop()
                await server_runner.stop()

        ping, pong, delivered = fleet_sandbox.run(scenario())
        assert ping.kind == "ping" and ping.body == {"n": 1}
        assert ping.sender == "client" and ping.recipient == "server"
        assert pong.kind == "pong" and pong.body == {"re": {"n": 1}}
        assert delivered == 1

    def test_message_ids_are_scoped_per_transport(self, fleet_sandbox):
        async def scenario():
            scheduler = AsyncioScheduler(time_scale=20.0)
            directory = {}
            server = Recorder("server")
            runner = NodeRunner(server, _transport(scheduler, directory),
                                listen=("127.0.0.1", 0))
            clients, runners = [], []
            for name in ("c1", "c2"):
                node = Recorder(name)
                runners.append(NodeRunner(
                    node, _transport(scheduler, directory)))
                clients.append(node)
            try:
                await runner.start()
                for client_runner in runners:
                    await client_runner.start()
                for client in clients:
                    for n in range(3):
                        assert client.send("server", "ping", {"n": n})
                await _wait_for(lambda: len(server.received) == 6)
                ids = {}
                for message in server.received:
                    ids.setdefault(message.sender, []).append(
                        message.message_id)
                return ids
            finally:
                for client_runner in runners:
                    await client_runner.stop()
                await runner.stop()

        ids = fleet_sandbox.run(scenario())
        # Each transport allocates independently from 1 (the regression
        # the old module-global counter would fail).
        assert ids == {"c1": [1, 2, 3], "c2": [1, 2, 3]}

    def test_loopback_and_unroutable(self, fleet_sandbox):
        async def scenario():
            scheduler = AsyncioScheduler(time_scale=20.0)
            node = Recorder("solo")
            transport = _transport(scheduler, {})
            runner = NodeRunner(node, transport)
            try:
                await runner.start()
                assert node.send("solo", "note", {"to": "self"})
                await _wait_for(lambda: node.received)
                unroutable = node.send("ghost", "ping", None)
                return node.received[0].kind, unroutable, \
                    transport.messages_dropped
            finally:
                await runner.stop()

        kind, unroutable, dropped = fleet_sandbox.run(scenario())
        assert kind == "note"
        assert unroutable is False
        assert dropped == 1

    def test_trace_context_rides_the_wire(self, fleet_sandbox):
        async def scenario():
            scheduler = AsyncioScheduler(time_scale=20.0)
            directory = {}
            tracer = Tracer(scheduler.clock)
            server = Recorder("server")
            client = Recorder("client")
            server_runner = NodeRunner(server,
                                       _transport(scheduler, directory),
                                       listen=("127.0.0.1", 0))
            client_runner = NodeRunner(
                client, _transport(scheduler, directory, tracer=tracer))
            try:
                await server_runner.start()
                await client_runner.start()
                sent_context = TraceContext(trace_id="wire-test-1",
                                            span_id=4)
                with tracer.activate(sent_context):
                    client.send("server", "ping", None)
                await _wait_for(lambda: server.received)
                return server.received[0].trace, sent_context
            finally:
                await client_runner.stop()
                await server_runner.stop()

        received, sent = fleet_sandbox.run(scenario())
        assert received == sent
        assert received is not None


class TestReconnect:
    def test_backoff_redial_reaches_a_late_listener(self, fleet_sandbox):
        """Frames queued for a peer that is not up yet are delivered
        once the peer starts listening — the writer loop redials under
        the BackoffPolicy instead of dropping on the first refusal."""
        async def scenario():
            scheduler = AsyncioScheduler(time_scale=20.0)
            port = fleet_sandbox.ephemeral_port()
            directory = {"server": ("127.0.0.1", port)}
            client = Recorder("client")
            client_transport = _transport(scheduler, directory)
            client_runner = NodeRunner(client, client_transport)
            await client_runner.start()
            assert client.send("server", "ping", {"early": True})
            await asyncio.sleep(0.15)  # a few refused dial attempts

            server = Recorder("server")
            fleet_sandbox.release_port(port)  # about to bind it for real
            server_runner = NodeRunner(server,
                                       _transport(scheduler, directory),
                                       listen=("127.0.0.1", port))
            try:
                await server_runner.start()
                await _wait_for(lambda: server.received)
                return server.received[0].body, \
                    client_transport.reconnect_attempts
            finally:
                await client_runner.stop()
                await server_runner.stop()

        body, attempts = fleet_sandbox.run(scenario())
        assert body == {"early": True}
        assert attempts >= 1

    def test_exhausted_backoff_drops_the_frame(self, fleet_sandbox):
        async def scenario():
            scheduler = AsyncioScheduler(time_scale=20.0)
            port = fleet_sandbox.ephemeral_port()
            directory = {"server": ("127.0.0.1", port)}  # nobody home
            client = Recorder("client")
            transport = _transport(
                scheduler, directory,
                reconnect_policy=BackoffPolicy(
                    base_delay=0.02, multiplier=1.0, max_delay=0.02,
                    jitter=0.0, max_attempts=2))
            runner = NodeRunner(client, transport)
            try:
                await runner.start()
                assert client.send("server", "ping", None)
                await _wait_for(lambda: transport.messages_dropped >= 1)
                return transport.messages_dropped
            finally:
                await runner.stop()

        assert fleet_sandbox.run(scenario()) >= 1


class TestFramingHostility:
    def test_garbage_stream_is_dropped_but_listener_survives(
            self, fleet_sandbox):
        async def scenario():
            scheduler = AsyncioScheduler(time_scale=20.0)
            directory = {}
            telemetry = MetricsRegistry()
            server = Recorder("server")
            server_runner = NodeRunner(
                server,
                _transport(scheduler, directory, telemetry=telemetry),
                listen=("127.0.0.1", 0))
            client = Recorder("client")
            client_runner = NodeRunner(client,
                                       _transport(scheduler, directory))
            try:
                await server_runner.start()
                host, port = server_runner.bound_address
                # A hostile peer writes bytes that are not a frame.
                _, writer = await asyncio.open_connection(host, port)
                writer.write(b"NOT A FRAME AT ALL")
                await writer.drain()
                writer.close()
                # The listener refused the stream with a clean error...
                errors = telemetry.counter(
                    "repro_transport_frame_errors_total", "")
                await _wait_for(lambda: sum(
                    (telemetry.snapshot().get(
                        "repro_transport_frame_errors_total", {})
                     .get("series") or {}).values()) >= 1)
                # ...and still serves well-framed peers.
                await client_runner.start()
                assert client.send("server", "ping", None)
                await _wait_for(lambda: server.received)
                return len(server.received)
            finally:
                await client_runner.stop()
                await server_runner.stop()

        assert fleet_sandbox.run(scenario()) == 1


class TestGracefulShutdown:
    def test_close_is_idempotent_and_stops_sends(self, fleet_sandbox):
        async def scenario():
            scheduler = AsyncioScheduler(time_scale=20.0)
            directory = {}
            server = Recorder("server")
            server_runner = NodeRunner(server,
                                       _transport(scheduler, directory),
                                       listen=("127.0.0.1", 0))
            client = Recorder("client")
            client_transport = _transport(scheduler, directory)
            client_runner = NodeRunner(client, client_transport)
            await server_runner.start()
            await client_runner.start()
            assert client.send("server", "ping", None)
            await _wait_for(lambda: server.received)

            await client_runner.stop()
            await client_runner.stop()  # idempotent
            refused = client.send("server", "ping", None)
            await server_runner.stop()
            return refused

        assert fleet_sandbox.run(scenario()) is False

    def test_outbox_flushes_before_teardown(self, fleet_sandbox):
        """Messages sent immediately before close() still arrive: close
        waits (briefly) for outboxes to drain before cancelling."""
        async def scenario():
            scheduler = AsyncioScheduler(time_scale=20.0)
            directory = {}
            server = Recorder("server")
            server_runner = NodeRunner(server,
                                       _transport(scheduler, directory),
                                       listen=("127.0.0.1", 0))
            client = Recorder("client")
            client_runner = NodeRunner(client,
                                       _transport(scheduler, directory))
            try:
                await server_runner.start()
                await client_runner.start()
                for n in range(5):
                    assert client.send("server", "burst", {"n": n})
                await client_runner.stop()  # flush, then tear down
                await _wait_for(lambda: len(server.received) == 5)
                return [m.body["n"] for m in server.received]
            finally:
                await server_runner.stop()

        assert fleet_sandbox.run(scenario()) == [0, 1, 2, 3, 4]
