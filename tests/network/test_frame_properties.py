"""Hypothesis properties of the TCP frame codec: round-trips are exact,
partial reads resume losslessly at any chunk boundary, and any
single-byte corruption of a frame is refused with a clean
:class:`FrameError` — never decoded into a wrong message, never an
uncontrolled exception.  Mirrors the ``tests/storage`` canonical-format
property style."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.frame import (
    FrameDecoder,
    FrameError,
    decode_frame,
    decode_value,
    encode_frame,
    encode_value,
)
from repro.network.transport import Message
from repro.telemetry.tracer import TraceContext

# Values the protocol actually ships: message bodies are dicts/lists of
# None/bool/int/float/str/bytes (transaction blobs ride as bytes).
body_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-2 ** 80, max_value=2 ** 80)
    | st.floats(allow_nan=False)
    | st.text(max_size=20)
    | st.binary(max_size=40),
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(st.text(max_size=10), children,
                                        max_size=4)),
    max_leaves=16,
)

traces = st.none() | st.builds(
    TraceContext,
    trace_id=st.text(min_size=1, max_size=16),
    span_id=st.integers(min_value=0, max_value=2 ** 53),
)

messages = st.builds(
    Message,
    sender=st.text(max_size=12),
    recipient=st.text(max_size=12),
    kind=st.text(max_size=12),
    body=body_values,
    sent_at=st.floats(allow_nan=False, allow_infinity=False),
    size_bytes=st.integers(min_value=0, max_value=2 ** 31),
    message_id=st.integers(min_value=0, max_value=2 ** 53),
    trace=traces,
)


class TestCanonicalValues:
    @given(body_values)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_is_exact(self, value):
        assert decode_value(encode_value(value)) == value

    @given(st.dictionaries(st.text(max_size=10), body_values, max_size=6),
           st.randoms())
    @settings(max_examples=100, deadline=None)
    def test_dict_key_order_is_irrelevant(self, mapping, rnd):
        items = list(mapping.items())
        rnd.shuffle(items)
        assert encode_value(dict(items)) == encode_value(mapping)

    def test_tuples_encode_as_lists(self):
        assert encode_value((1, "a")) == encode_value([1, "a"])

    def test_non_str_dict_keys_refused(self):
        with pytest.raises(FrameError):
            encode_value({1: "x"})

    def test_unencodable_type_refused(self):
        with pytest.raises(FrameError):
            encode_value(object())

    def test_trailing_bytes_refused(self):
        with pytest.raises(FrameError):
            decode_value(encode_value(1) + b"\x00")


class TestFrameRoundtrip:
    @given(messages)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip(self, message):
        decoded = decode_frame(encode_frame(message))
        assert decoded == message
        # Message.__eq__ excludes the out-of-band trace — the header
        # extension must still carry it faithfully.
        assert decoded.trace == message.trace

    @given(messages)
    @settings(max_examples=50, deadline=None)
    def test_encoding_is_deterministic(self, message):
        assert encode_frame(message) == encode_frame(message)


def _chunked(data: bytes, cuts) -> list:
    offsets = sorted({min(cut, len(data)) for cut in cuts})
    pieces, start = [], 0
    for offset in offsets:
        pieces.append(data[start:offset])
        start = offset
    pieces.append(data[start:])
    return pieces


class TestPartialReadResumption:
    @given(st.lists(messages, min_size=1, max_size=4),
           st.lists(st.integers(min_value=0, max_value=4096), max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_any_chunking_yields_the_same_messages(self, batch, cuts):
        stream = b"".join(encode_frame(m) for m in batch)
        decoder = FrameDecoder()
        decoded = []
        for piece in _chunked(stream, cuts):
            decoded.extend(decoder.feed(piece))
        decoder.close()  # clean boundary: nothing buffered
        assert decoded == batch
        assert [d.trace for d in decoded] == [m.trace for m in batch]
        assert decoder.frames_decoded == len(batch)
        assert decoder.bytes_consumed == len(stream)

    @given(messages, st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_truncation_detected_at_close(self, message, cut_back):
        frame = encode_frame(message)
        truncated = frame[:max(1, len(frame) - cut_back)]
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(truncated)
            decoder.close()


# A fixed, representative frame for the exhaustive corruption sweep:
# nested body, bytes payload, trace extension.
SAMPLE_FRAME = encode_frame(Message(
    sender="gateway-0", recipient="manager", kind="gossip_transaction",
    body={"transaction": b"\x01\x02" * 12, "hop": 2,
          "flags": [True, None, 3.5]},
    sent_at=12.25, size_bytes=24, message_id=77,
    trace=TraceContext(trace_id="tx-abc", span_id=9),
))


class TestSingleByteCorruption:
    @given(st.integers(min_value=0, max_value=len(SAMPLE_FRAME) - 1),
           st.integers(min_value=1, max_value=255))
    @settings(max_examples=300, deadline=None)
    def test_any_flip_refused_cleanly(self, offset, xor):
        corrupted = bytearray(SAMPLE_FRAME)
        corrupted[offset] ^= xor
        decoder = FrameDecoder()
        # Depending on where the flip lands the error surfaces during
        # feed (magic/version/CRC/payload) or at close (a grown length
        # field leaves the decoder waiting) — but it is always a
        # FrameError, never a wrong message or a raw struct/unicode
        # exception.
        with pytest.raises(FrameError):
            decoder.feed(bytes(corrupted))
            decoder.close()

    def test_pristine_sample_decodes(self):
        message = decode_frame(SAMPLE_FRAME)
        assert message.kind == "gossip_transaction"
        assert message.trace == TraceContext(trace_id="tx-abc", span_id=9)

    def test_failure_poisons_the_decoder(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed(b"XXXX")
        with pytest.raises(FrameError):
            decoder.feed(SAMPLE_FRAME)
