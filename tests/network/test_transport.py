"""Tests for repro.network.transport."""

import random

import pytest

from repro.network.transport import (
    BACKBONE_LINK,
    LOCAL_LINK,
    WIRELESS_SENSOR_LINK,
    LatencyModel,
    Message,
)


class TestLatencyModel:
    def test_base_latency_only(self):
        model = LatencyModel(base_latency=0.1)
        assert model.sample_delay(random.Random(1)) == 0.1

    def test_jitter_bounds(self):
        model = LatencyModel(base_latency=0.1, jitter=0.05)
        rng = random.Random(2)
        for _ in range(100):
            delay = model.sample_delay(rng)
            assert 0.1 <= delay <= 0.15

    def test_loss_rate(self):
        model = LatencyModel(base_latency=0.01, loss_rate=0.5)
        rng = random.Random(3)
        results = [model.sample_delay(rng) for _ in range(1000)]
        dropped = sum(1 for r in results if r is None)
        assert 400 < dropped < 600

    def test_zero_loss_never_drops(self):
        model = LatencyModel(loss_rate=0.0)
        rng = random.Random(4)
        assert all(model.sample_delay(rng) is not None for _ in range(100))

    def test_bandwidth_adds_transmission_delay(self):
        model = LatencyModel(base_latency=0.0,
                             bandwidth_bytes_per_second=1000.0)
        assert model.sample_delay(random.Random(1), size_bytes=500) == 0.5

    def test_zero_size_ignores_bandwidth(self):
        model = LatencyModel(base_latency=0.1,
                             bandwidth_bytes_per_second=1000.0)
        assert model.sample_delay(random.Random(1), size_bytes=0) == 0.1

    @pytest.mark.parametrize("kwargs", [
        {"base_latency": -0.1},
        {"jitter": -0.1},
        {"loss_rate": -0.1},
        {"loss_rate": 1.0},
        {"bandwidth_bytes_per_second": -1.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            LatencyModel(**kwargs)

    def test_builtin_links_ordered_by_speed(self):
        assert BACKBONE_LINK.base_latency < WIRELESS_SENSOR_LINK.base_latency
        assert LOCAL_LINK.base_latency == 0.0


class TestMessage:
    def test_bare_messages_carry_no_id(self):
        # Message ids are allocated by transports, not by the
        # dataclass: a bare Message is id 0 and never consults any
        # process-global state.
        a = Message("s", "r", "k", None, 0.0)
        b = Message("s", "r", "k", None, 0.0)
        assert a.message_id == 0
        assert b.message_id == 0

    def test_ids_scoped_per_network(self):
        # Regression for the old module-global counter: two Networks
        # in one process must each hand out an independent 1, 2, 3, …
        # sequence, so sim runs are reproducible regardless of what
        # other transports the process has already constructed.
        from repro.network.network import Network, NetworkNode
        from repro.network.simulator import EventScheduler

        class Sink(NetworkNode):
            def handle_message(self, message):
                pass

        def run_network():
            scheduler = EventScheduler()
            network = Network(scheduler, rng=random.Random(0))
            seen = []
            for address in ("a", "b"):
                network.attach(Sink(address))
            network.add_tap(lambda m: seen.append(m.message_id))
            for _ in range(3):
                network.send("a", "b", "ping", None)
            scheduler.run()
            return seen

        assert run_network() == [1, 2, 3]
        # A second, entirely separate Network restarts from 1.
        assert run_network() == [1, 2, 3]

    def test_repr(self):
        message = Message("alice", "bob", "ping", None, 1.5)
        assert "ping" in repr(message)
        assert "alice" in repr(message)
