"""The ``repro node`` OS-process entrypoint, driven as a parent would.

Each test spawns real child interpreters through
:class:`~repro.network.fleet_proc.ProcessFleet` and speaks to them over
TCP — ready-line contract, per-process Prometheus exporter, and the two
ways a process dies:

* SIGTERM mid-reconnect must flush writers and close the store cleanly
  — the journal reopens with no tail corruption and cold-restores to
  the reference hashes (graceful-shutdown regression);
* SIGKILL is the crash the journal must survive: a cold restart of the
  same command line replays the journal and catches back up.
"""

import random

import pytest

from repro.network.differential import _new_consensus, build_workload
from repro.network.fleet_proc import (
    FleetController,
    FleetProcessError,
    ProcessFleet,
    _write_genesis,
    scrape_metrics,
)
from repro.network.proc import NodeProcessSpec
from repro.storage.differential import node_hashes

TIME_SCALE = 20.0


def _spec(address, genesis_path, **kwargs):
    kwargs.setdefault("rng_seed", int(address[1:]))
    kwargs.setdefault("time_scale", TIME_SCALE)
    return NodeProcessSpec(address=address, genesis_path=genesis_path,
                           **kwargs)


def _controller(workload, ready, *, target):
    return FleetController(
        workload.transactions, target=target,
        directory={ready["address"]: (ready["host"], ready["port"])},
        time_scale=TIME_SCALE, rng_seed=workload.seed)


async def _submit_all(controller, count, *, start=0):
    for index in range(start, count):
        accepted, reason = await controller.submit(index)
        assert accepted, f"tx {index} rejected: {reason}"


class TestSpec:
    def test_to_argv_round_trips_the_command_line(self):
        spec = NodeProcessSpec(
            address="n3", genesis_path="/tmp/g.hex", rng_seed=3,
            listen_port=4103, seeds=["n0=127.0.0.1:4100"],
            storage_backend="file", storage_dir="/tmp/s",
            crypto_backend="accel", metrics_port=0, time_scale=20.0)
        argv = spec.to_argv()
        assert argv[0] == "node"
        for flag, value in (("--address", "n3"),
                            ("--rng-seed", "3"),
                            ("--listen", "127.0.0.1:4103"),
                            ("--storage-backend", "file"),
                            ("--storage-dir", "/tmp/s"),
                            ("--crypto-backend", "accel"),
                            ("--metrics-port", "0"),
                            ("--seed-node", "n0=127.0.0.1:4100")):
            index = argv.index(flag)
            assert argv[index + 1] == value

    def test_rejects_bad_configurations(self):
        with pytest.raises(ValueError):
            NodeProcessSpec(address="n0", genesis_path="g",
                            storage_backend="papyrus")
        with pytest.raises(ValueError):
            NodeProcessSpec(address="n0", genesis_path="g",
                            storage_backend="file")  # no storage_dir
        with pytest.raises(ValueError):
            NodeProcessSpec(address="n0", genesis_path="g",
                            time_scale=0.0)
        with pytest.raises(ValueError):
            NodeProcessSpec(address="n0", genesis_path="g",
                            seeds=["n0@localhost"])


class TestProcessLifecycle:
    def test_ready_line_metrics_page_and_clean_exit(self, fleet_sandbox):
        workload = build_workload(3, transactions=4)
        run_dir = fleet_sandbox.storage_dir()
        genesis_path = _write_genesis(workload.genesis, run_dir)
        with ProcessFleet(run_dir=run_dir) as fleet:
            ready = fleet.spawn(_spec("n0", genesis_path, metrics_port=0))
            assert ready["address"] == "n0"
            assert ready["pid"] == fleet.processes["n0"].pid
            assert ready["host"] == "127.0.0.1"
            assert ready["port"] > 0
            assert ready["metrics_port"] > 0
            assert ready["restored"] == 0
            assert ready["storage"] == "none"

            # Its own exporter port serves the node's registry.
            page = scrape_metrics("127.0.0.1", ready["metrics_port"])
            assert "# TYPE repro_transport_frames_sent_total counter" \
                in page
            assert "repro_discovery_hellos_total" in page

            # Double-spawn of a live address must refuse, not fork.
            with pytest.raises(FleetProcessError):
                fleet.spawn(fleet.processes["n0"].spec)
            with pytest.raises(FleetProcessError):
                fleet.respawn("n0")

            assert fleet.terminate("n0") == 0

    def test_sigterm_mid_reconnect_leaves_the_journal_clean(
            self, fleet_sandbox):
        workload = build_workload(5, transactions=6)
        run_dir = fleet_sandbox.storage_dir()
        storage_dir = fleet_sandbox.storage_dir()
        genesis_path = _write_genesis(workload.genesis, run_dir)
        # A seed that refuses connections forever: the node's writer
        # task sits in its reconnect/backoff loop the whole test, so
        # SIGTERM lands exactly in the state the regression targets.
        dead_port = fleet_sandbox.ephemeral_port()

        with ProcessFleet(run_dir=run_dir) as fleet:
            ready = fleet.spawn(_spec(
                "n0", genesis_path, storage_backend="file",
                storage_dir=storage_dir,
                seeds=[f"ghost=127.0.0.1:{dead_port}"]))

            async def drive():
                controller = _controller(workload, ready, target="n0")
                await controller.start()
                try:
                    await _submit_all(controller,
                                      len(workload.transactions))
                    return await controller.status(
                        "n0", now=workload.credit_now)
                finally:
                    await controller.stop()

            status = fleet_sandbox.run(drive())
            assert status["hashes"] == workload.reference_hashes

            assert fleet.terminate("n0") == 0

        # Reopen the store in-process: NodePersistence verifies the
        # journal's hash chain on load (a torn tail raises), and the
        # cold restore must land on the same reference hashes.
        from repro.storage.persistence import NodePersistence
        from repro.storage.store import open_store
        from repro.nodes.full_node import FullNode

        store = open_store("file", storage_dir, node="n0")
        try:
            persistence = NodePersistence(store)
            node = FullNode("n0", workload.genesis,
                            consensus=_new_consensus(workload.params),
                            rng=random.Random(0), enforce_pow=True)
            node.attach_persistence(persistence)
            restored = node.cold_restore()
            assert restored == len(workload.transactions)
            assert node_hashes(node, now=workload.credit_now) == \
                workload.reference_hashes
        finally:
            store.close()

    def test_sigkill_then_cold_restart_catches_up(self, fleet_sandbox):
        workload = build_workload(9, transactions=8)
        run_dir = fleet_sandbox.storage_dir()
        storage_dir = fleet_sandbox.storage_dir()
        genesis_path = _write_genesis(workload.genesis, run_dir)
        half = len(workload.transactions) // 2

        with ProcessFleet(run_dir=run_dir) as fleet:
            spec = _spec("n0", genesis_path, storage_backend="file",
                         storage_dir=storage_dir)
            ready = fleet.spawn(spec)

            async def before_crash():
                controller = _controller(workload, ready, target="n0")
                await controller.start()
                try:
                    await _submit_all(controller, half)
                finally:
                    await controller.stop()

            fleet_sandbox.run(before_crash())
            fleet.kill("n0")  # SIGKILL: no flush, no close

            reborn = fleet.respawn("n0")
            assert reborn["pid"] != ready["pid"]
            assert reborn["restored"] == half  # journal replayed

            async def after_restart():
                controller = _controller(workload, reborn, target="n0")
                await controller.start()
                try:
                    await _submit_all(controller,
                                      len(workload.transactions),
                                      start=half)
                    return await controller.status(
                        "n0", now=workload.credit_now)
                finally:
                    await controller.stop()

            status = fleet_sandbox.run(after_restart())
            assert status["restored"] == half
            assert status["hashes"] == workload.reference_hashes
            assert fleet.terminate("n0") == 0
