"""Tests for per-node service-time queueing (DDoS realism)."""

import random

import pytest

from repro.network.network import Network, NetworkNode
from repro.network.simulator import EventScheduler


class Recorder(NetworkNode):
    def __init__(self, address, **kwargs):
        super().__init__(address, **kwargs)
        self.delivery_times = []

    def handle_message(self, message):
        self.delivery_times.append(self.network.scheduler.clock.now())


def make_pair(service_time=0.0):
    scheduler = EventScheduler()
    network = Network(scheduler, rng=random.Random(1))
    sender = Recorder("sender")
    receiver = Recorder("receiver", service_time_s=service_time)
    network.attach(sender)
    network.attach(receiver)
    return scheduler, network, sender, receiver


class TestServiceQueue:
    def test_zero_service_time_is_instant(self):
        scheduler, network, sender, receiver = make_pair(0.0)
        for _ in range(10):
            sender.send("receiver", "ping", None)
        scheduler.run()
        assert all(t == 0.0 for t in receiver.delivery_times)

    def test_burst_is_serialised(self):
        scheduler, network, sender, receiver = make_pair(service_time=1.0)
        for _ in range(5):
            sender.send("receiver", "ping", None)
        scheduler.run()
        # Each message occupies the server for 1 s: deliveries at 1..5.
        assert receiver.delivery_times == pytest.approx(
            [1.0, 2.0, 3.0, 4.0, 5.0])
        assert receiver.queue_depth_peak >= 5

    def test_spaced_arrivals_do_not_queue(self):
        scheduler, network, sender, receiver = make_pair(service_time=0.5)
        for i in range(3):
            scheduler.schedule(float(i * 2),
                               lambda: sender.send("receiver", "ping", None))
        scheduler.run()
        gaps = [b - a for a, b in zip(receiver.delivery_times,
                                      receiver.delivery_times[1:])]
        assert all(gap == pytest.approx(2.0) for gap in gaps)

    def test_backlog_seconds_reports_queue(self):
        scheduler, network, sender, receiver = make_pair(service_time=1.0)
        for _ in range(4):
            sender.send("receiver", "ping", None)
        assert receiver.backlog_seconds == pytest.approx(4.0)
        scheduler.run()
        assert receiver.backlog_seconds == 0.0

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError):
            Recorder("x", service_time_s=-0.1)


class TestFloodSaturation:
    def test_flood_delays_honest_traffic(self):
        """A flooded slow node serves honest requests late — the effect
        the DDoS experiments measure."""
        scheduler = EventScheduler()
        network = Network(scheduler, rng=random.Random(2))
        honest = Recorder("honest")
        attacker = Recorder("attacker")
        victim = Recorder("victim", service_time_s=0.01)
        for node in (honest, attacker, victim):
            network.attach(node)
        # 500 junk messages land first, then one honest request.
        for _ in range(500):
            attacker.send("victim", "junk", None)
        honest.send("victim", "real-request", None)
        scheduler.run()
        assert victim.delivery_times[-1] >= 5.0  # behind the flood

    def test_unflooded_node_fast(self):
        scheduler, network, sender, receiver = make_pair(service_time=0.01)
        sender.send("receiver", "real-request", None)
        scheduler.run()
        assert receiver.delivery_times[0] == pytest.approx(0.01)
