"""Sandboxed fleet fixture for asyncio/TCP transport tests.

Every test gets a :class:`FleetSandbox`: ephemeral localhost ports,
per-test tempdir storage, and a **hard teardown** — each ``run()``
drives its coroutine on a dedicated event loop and, no matter how the
test exits, cancels every task still alive on that loop and closes it.
A test that leaks a reader/writer/server task cannot poison the next
test or leave the pytest process hanging.

No pytest-asyncio in the environment: tests stay synchronous and hand
coroutines to ``fleet_sandbox.run(...)``.
"""

import asyncio
import shutil
import socket
import tempfile

import pytest

__all__ = ["FleetSandbox", "fleet_sandbox"]


class FleetSandbox:
    """Scoped resources for one fleet test."""

    def __init__(self):
        self._tempdirs = []
        self._sockets = []

    # -- resources ---------------------------------------------------------

    def ephemeral_port(self, host: str = "127.0.0.1") -> int:
        """Reserve a free localhost port.

        The reserving socket is kept open (unbound listeners cannot
        steal the port meanwhile) until teardown; tests that need the
        port bound by a transport should prefer ``listen=(host, 0)``
        and read the bound address back — this helper exists for the
        cases that must know a port *before* anything listens on it,
        e.g. reconnect tests that dial a not-yet-started peer.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        port = sock.getsockname()[1]
        sock.close()
        return port

    def storage_dir(self) -> str:
        """A fresh tempdir, removed at teardown."""
        path = tempfile.mkdtemp(prefix="repro-fleet-")
        self._tempdirs.append(path)
        return path

    # -- execution ---------------------------------------------------------

    def run(self, coro, *, timeout: float = 60.0):
        """Run *coro* to completion on a dedicated loop.

        Wraps the coroutine in ``wait_for(timeout)`` so a wedged fleet
        fails the test instead of hanging CI, then hard-kills whatever
        tasks are still pending before closing the loop.
        """
        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(
                asyncio.wait_for(coro, timeout=timeout))
        finally:
            lingering = asyncio.all_tasks(loop)
            for task in lingering:
                task.cancel()
            if lingering:
                loop.run_until_complete(
                    asyncio.gather(*lingering, return_exceptions=True))
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        for sock in self._sockets:
            try:
                sock.close()
            except OSError:
                pass
        self._sockets.clear()
        for path in self._tempdirs:
            shutil.rmtree(path, ignore_errors=True)
        self._tempdirs.clear()


@pytest.fixture
def fleet_sandbox():
    sandbox = FleetSandbox()
    try:
        yield sandbox
    finally:
        sandbox.close()
