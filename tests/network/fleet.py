"""Sandboxed fleet fixture for asyncio/TCP transport tests.

Every test gets a :class:`FleetSandbox`: ephemeral localhost ports,
per-test tempdir storage, and a **hard teardown** — each ``run()``
drives its coroutine on a dedicated event loop and, no matter how the
test exits, cancels every task still alive on that loop and closes it.
A test that leaks a reader/writer/server task cannot poison the next
test or leave the pytest process hanging.

No pytest-asyncio in the environment: tests stay synchronous and hand
coroutines to ``fleet_sandbox.run(...)``.
"""

import asyncio
import shutil
import socket
import tempfile

import pytest

__all__ = ["FleetSandbox", "fleet_sandbox"]


class FleetSandbox:
    """Scoped resources for one fleet test."""

    def __init__(self):
        self._tempdirs = []
        self._ports = {}

    # -- resources ---------------------------------------------------------

    def ephemeral_port(self, host: str = "127.0.0.1") -> int:
        """Reserve a free localhost port.

        The reserving socket stays **bound** (not listening) until
        teardown or :meth:`release_port`, so a parallel test's
        ephemeral bind cannot steal the port in the meantime — the
        port-collision flake this fixture used to have when it closed
        the socket immediately.  Dialing a bound-but-not-listening
        port still gets ECONNREFUSED, exactly like a dead peer, which
        is what reconnect tests want.  Tests that later bind the port
        themselves (the peer "comes up") must call
        :meth:`release_port` first; prefer ``listen=(host, 0)`` plus
        reading the bound address back whenever nothing needs to know
        the port in advance.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        port = sock.getsockname()[1]
        self._ports[port] = sock
        return port

    def release_port(self, port: int) -> int:
        """Drop the reservation so something can actually bind *port*
        (narrowing the steal window to the instant before the bind)."""
        sock = self._ports.pop(port, None)
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        return port

    def storage_dir(self) -> str:
        """A fresh tempdir, removed at teardown."""
        path = tempfile.mkdtemp(prefix="repro-fleet-")
        self._tempdirs.append(path)
        return path

    # -- execution ---------------------------------------------------------

    def run(self, coro, *, timeout: float = 60.0):
        """Run *coro* to completion on a dedicated loop.

        Wraps the coroutine in ``wait_for(timeout)`` so a wedged fleet
        fails the test instead of hanging CI, then hard-kills whatever
        tasks are still pending before closing the loop.
        """
        loop = asyncio.new_event_loop()
        try:
            return loop.run_until_complete(
                asyncio.wait_for(coro, timeout=timeout))
        finally:
            lingering = asyncio.all_tasks(loop)
            for task in lingering:
                task.cancel()
            if lingering:
                loop.run_until_complete(
                    asyncio.gather(*lingering, return_exceptions=True))
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    # -- teardown ----------------------------------------------------------

    def close(self) -> None:
        for sock in self._ports.values():
            try:
                sock.close()
            except OSError:
                pass
        self._ports.clear()
        for path in self._tempdirs:
            shutil.rmtree(path, ignore_errors=True)
        self._tempdirs.clear()


@pytest.fixture
def fleet_sandbox():
    sandbox = FleetSandbox()
    try:
        yield sandbox
    finally:
        sandbox.close()
