"""Network test fixtures: the sandboxed fleet harness."""

from .fleet import fleet_sandbox  # noqa: F401
