"""Tests for repro.network.simulator."""

import pytest

from repro.network.simulator import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(2.0, lambda: fired.append("late"))
        scheduler.schedule(1.0, lambda: fired.append("early"))
        scheduler.run()
        assert fired == ["early", "late"]

    def test_ties_break_in_insertion_order(self):
        scheduler = EventScheduler()
        fired = []
        for name in ("a", "b", "c"):
            scheduler.schedule(1.0, lambda n=name: fired.append(n))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(3.5, lambda: seen.append(scheduler.clock.now()))
        scheduler.run()
        assert seen == [3.5]
        assert scheduler.clock.now() == 3.5

    def test_negative_delay_rejected(self):
        scheduler = EventScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(ValueError):
            scheduler.schedule_at(0.5, lambda: None)

    def test_events_can_schedule_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                scheduler.schedule(1.0, lambda: chain(n + 1))

        scheduler.schedule(0.0, lambda: chain(0))
        scheduler.run()
        assert fired == [0, 1, 2, 3]
        assert scheduler.clock.now() == 3.0


class TestCancel:
    def test_cancelled_event_does_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        event_id = scheduler.schedule(1.0, lambda: fired.append("x"))
        scheduler.cancel(event_id)
        scheduler.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append("keep"))
        cancelled = scheduler.schedule(2.0, lambda: fired.append("drop"))
        scheduler.cancel(cancelled)
        scheduler.run()
        assert fired == ["keep"]


class TestRunControl:
    def test_run_until_deadline(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(5))
        executed = scheduler.run_until(3.0)
        assert executed == 1
        assert fired == [1]
        assert scheduler.clock.now() == 3.0
        scheduler.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_even_when_idle(self):
        scheduler = EventScheduler()
        scheduler.run_until(10.0)
        assert scheduler.clock.now() == 10.0

    def test_max_events_limit(self):
        scheduler = EventScheduler()
        fired = []
        for i in range(5):
            scheduler.schedule(float(i), lambda i=i: fired.append(i))
        executed = scheduler.run(max_events=2)
        assert executed == 2
        assert fired == [0, 1]

    def test_step_returns_false_when_empty(self):
        assert EventScheduler().step() is False

    def test_peek_time(self):
        scheduler = EventScheduler()
        assert scheduler.peek_time() is None
        scheduler.schedule(2.0, lambda: None)
        assert scheduler.peek_time() == 2.0

    def test_peek_skips_cancelled(self):
        scheduler = EventScheduler()
        event_id = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        scheduler.cancel(event_id)
        assert scheduler.peek_time() == 2.0

    def test_events_executed_counter(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        scheduler.run()
        assert scheduler.events_executed == 2


class TestPendingAccounting:
    def test_len_counts_live_events_only(self):
        scheduler = EventScheduler()
        ids = [scheduler.schedule(float(i + 1), lambda: None)
               for i in range(4)]
        assert len(scheduler) == 4
        scheduler.cancel(ids[1])
        assert len(scheduler) == 3
        assert scheduler.pending == 4  # cancelled id still on the heap
        scheduler.step()
        assert len(scheduler) == 2

    def test_cancel_after_fire_does_not_grow_tombstones(self):
        scheduler = EventScheduler()
        event_id = scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        scheduler.cancel(event_id)  # already fired: must be a no-op
        assert len(scheduler._cancelled) == 0
        assert len(scheduler) == 0

    def test_double_cancel_keeps_one_tombstone(self):
        scheduler = EventScheduler()
        event_id = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        scheduler.cancel(event_id)
        scheduler.cancel(event_id)
        assert len(scheduler._cancelled) == 1
        assert len(scheduler) == 1

    def test_tombstones_drain_as_heap_pops(self):
        scheduler = EventScheduler()
        ids = [scheduler.schedule(float(i + 1), lambda: None)
               for i in range(10)]
        for event_id in ids[:5]:
            scheduler.cancel(event_id)
        scheduler.run()
        # Every tombstone was reclaimed when its heap entry popped.
        assert len(scheduler._cancelled) == 0
        assert scheduler.pending == 0
        assert len(scheduler) == 0
        assert scheduler.events_executed == 5

    def test_len_stays_bounded_under_schedule_cancel_churn(self):
        scheduler = EventScheduler()
        for round_number in range(100):
            event_id = scheduler.schedule(1.0, lambda: None)
            scheduler.cancel(event_id)
            scheduler.schedule(1.0, lambda: None)
            scheduler.run()
        assert len(scheduler._cancelled) == 0
        assert len(scheduler) == 0
        assert scheduler.events_executed == 100
