"""BIoTSystem on the asyncio transport: config validation, mode
guards, and the full smart-factory workflow end to end over localhost
TCP — devices submitting real sensor reports through gateways, the
manager distributing keys, every full node converging."""

import asyncio

import pytest

from repro.core.biot import BIoTConfig, BIoTSystem
from repro.faults.report import node_state_hashes


class TestConfigValidation:
    def test_defaults_stay_on_the_simulator(self):
        config = BIoTConfig()
        assert config.transport == "sim"
        system = BIoTSystem.build(config)
        assert system.network is not None
        assert system.runners is None
        assert not system.asyncio_mode

    def test_unknown_transport_refused(self):
        with pytest.raises(ValueError):
            BIoTConfig(transport="carrier-pigeon")

    def test_bad_time_scale_refused(self):
        with pytest.raises(ValueError):
            BIoTConfig(transport="asyncio", time_scale=0.0)

    def test_bad_listen_port_refused(self):
        with pytest.raises(ValueError):
            BIoTConfig(transport="asyncio", listen_base_port=70000)

    def test_discovery_seeds_require_the_asyncio_transport(self):
        with pytest.raises(ValueError):
            BIoTConfig(discovery_seeds=("n0=127.0.0.1:4100",))

    def test_malformed_discovery_seed_refused(self):
        with pytest.raises(ValueError):
            BIoTConfig(transport="asyncio",
                       discovery_seeds=("n0@127.0.0.1:4100",))


class TestModeGuards:
    def test_sim_system_rejects_async_methods(self, fleet_sandbox):
        system = BIoTSystem.build(BIoTConfig(seed=3))

        async def call_start():
            await system.start_fleet()

        with pytest.raises(RuntimeError):
            fleet_sandbox.run(call_start())

    def test_asyncio_system_rejects_sim_methods(self):
        system = BIoTSystem.build(BIoTConfig(seed=3, transport="asyncio"))
        with pytest.raises(RuntimeError):
            system.initialize()
        with pytest.raises(RuntimeError):
            system.run_for(1.0)


class TestAsyncioDeployment:
    def test_build_gives_every_node_its_own_transport(self):
        config = BIoTConfig(gateway_count=2, device_count=3, seed=5,
                            transport="asyncio")
        system = BIoTSystem.build(config)
        assert system.network is None
        assert system.asyncio_mode
        # manager + gateways + devices, one runner each, one shared
        # directory.
        assert len(system.runners) == 1 + 2 + 3
        transports = {id(r.transport) for r in system.runners}
        assert len(transports) == len(system.runners)
        directories = {id(r.transport.directory) for r in system.runners}
        assert len(directories) == 1

    def test_discovery_seeds_wire_a_service_per_full_node(self):
        config = BIoTConfig(gateway_count=2, seed=5, transport="asyncio",
                            discovery_seeds=("ext=127.0.0.1:4100",))
        system = BIoTSystem.build(config)
        # One DiscoveryService per full node (manager + gateways),
        # each priming its own transport's directory with the seed.
        assert len(system.discovery) == 1 + 2
        for service in system.discovery:
            assert not service.bootstrapped  # start_fleet hellos later
            assert service.transport.directory["ext"] == \
                ("127.0.0.1", 4100)

    def test_listen_addresses_surface_bound_ports(self, fleet_sandbox):
        config = BIoTConfig(gateway_count=2, device_count=2, seed=7,
                            transport="asyncio", time_scale=20.0)
        system = BIoTSystem.build(config)

        async def scenario():
            try:
                await system.start_fleet()
                return system.listen_addresses()
            finally:
                await system.stop_fleet()
                system.close()

        bound = fleet_sandbox.run(scenario())
        full_addresses = {node.address for node in system.full_nodes}
        assert full_addresses <= set(bound)
        ports = [port for _, port in bound.values()]
        assert all(port > 0 for port in ports)
        assert len(set(ports)) == len(ports)  # all distinct, all real

    def test_smart_factory_over_tcp(self, fleet_sandbox):
        config = BIoTConfig(gateway_count=2, device_count=4, seed=11,
                            transport="asyncio", time_scale=20.0,
                            report_interval=3.0)
        system = BIoTSystem.build(config)

        async def scenario():
            try:
                await system.start_fleet()
                await system.initialize_async(settle_seconds=2.0)
                system.start_devices()
                await system.run_for_async(15.0)
                # A report submitted in the last instant of the run
                # window may still be in flight; let acceptance land
                # instead of racing the fleet stop (flaky under a
                # loaded single-core runner).
                for _ in range(200):
                    interim = system.summary()
                    if interim["submissions_accepted"] == \
                            interim["submissions_sent"]:
                        break
                    await asyncio.sleep(0.05)
            finally:
                await system.stop_fleet()
                system.close()
            return system.summary()

        summary = fleet_sandbox.run(scenario(), timeout=120.0)
        assert summary["submissions_sent"] > 0
        assert summary["submissions_accepted"] == \
            summary["submissions_sent"]
        assert summary["messages_dropped"] == 0
        # Key distribution reached the sensitive-data devices over TCP
        # (the manager dialled listeners the devices brought up).
        assert summary["key_distributions"] > 0
        # Every full node converged to the same state.
        sizes = set(summary["tangle_sizes"].values())
        assert len(sizes) == 1
        hashes = {canonical(node)
                  for node in system.full_nodes}
        assert len(hashes) == 1


def canonical(node):
    return tuple(sorted(node_state_hashes(node).items()))
