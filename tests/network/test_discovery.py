"""Seed-node bootstrap and peer discovery (`repro.network.discovery`).

Unit tests drive :class:`DiscoveryService` against a stub transport so
retry/idempotence/stale-address logic is exact and instant; the TCP
tests at the bottom assemble real fleets over
:class:`~repro.network.aio.AsyncioTransport` — including the
seed-down-at-start and rejoin-with-fresh-port cases the multi-process
harness depends on.
"""

import asyncio
import random

import pytest

from repro.faults.backoff import BackoffPolicy
from repro.network.aio import AsyncioScheduler, NodeRunner
from repro.network.discovery import (
    ANNOUNCE_KIND,
    HELLO_KIND,
    PEERS_KIND,
    DiscoveryService,
    PeerInfo,
    parse_seed,
)
from repro.network.transport import Message
from repro.telemetry.registry import MetricsRegistry

from .test_asyncio_transport import FAST_BACKOFF, Recorder, _transport, \
    _wait_for

FAST_HELLO = BackoffPolicy(base_delay=0.05, multiplier=1.5,
                           max_delay=0.2, jitter=0.0, max_attempts=60)


# -- wire-format helpers ---------------------------------------------------

class TestParseSeed:
    def test_parses_address_host_port(self):
        assert parse_seed("n0=127.0.0.1:4100") == ("n0", "127.0.0.1", 4100)

    def test_host_may_contain_colons(self):
        # rsplit on the final colon keeps IPv6-style hosts intact.
        assert parse_seed("n0=::1:4100") == ("n0", "::1", 4100)

    @pytest.mark.parametrize("spec", [
        "n0",                       # no endpoint at all
        "n0=127.0.0.1",             # no port
        "=127.0.0.1:4100",          # empty address
        "n0=:4100",                 # empty host
        "n0=127.0.0.1:notaport",    # unparsable port
        "n0=127.0.0.1:0",           # port out of range
        "n0=127.0.0.1:70000",       # port out of range
    ])
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            parse_seed(spec)


class TestPeerInfo:
    def test_round_trips_through_body(self):
        info = PeerInfo(address="n1", host="10.0.0.2", port=4200,
                        role="full")
        assert PeerInfo.from_body(info.to_body()) == info
        assert info.dialable

    def test_connect_only_entries_are_not_dialable(self):
        info = PeerInfo.from_body({"address": "driver-1", "host": None,
                                   "port": None, "role": "driver"})
        assert not info.dialable

    @pytest.mark.parametrize("body", [
        {"address": "", "host": "h", "port": 1, "role": "full"},
        {"address": "n1", "host": 7, "port": 1, "role": "full"},
        {"address": "n1", "host": "h", "port": True, "role": "full"},
        {"address": "n1", "host": "h", "port": 0, "role": "full"},
        {"address": "n1", "host": "h", "port": 99999, "role": "full"},
        {"address": "n1", "host": "h", "port": 1, "role": "archon"},
    ])
    def test_rejects_malformed_bodies(self, body):
        with pytest.raises(ValueError):
            PeerInfo.from_body(body)


# -- unit-level service tests ----------------------------------------------

class StubTransport:
    """Just enough transport for DiscoveryService: captures sends and
    scheduled timers so tests fire retries by hand."""

    def __init__(self, advertised=("127.0.0.1", 4100)):
        self.directory = {}
        self.handlers = {}
        self.sent = []  # (sender, recipient, kind, body)
        self.timers = []  # callbacks pending, FIFO
        self.advertised_address = advertised
        self._rng = random.Random(0)
        self.scheduler = self

    def register_handler(self, kind, handler):
        self.handlers[kind] = handler

    def send(self, sender, recipient, kind, body, **_kwargs):
        self.sent.append((sender, recipient, kind, body))
        return True

    def schedule(self, delay, callback):
        self.timers.append(callback)
        return len(self.timers)

    def fire_next(self):
        self.timers.pop(0)()

    def deliver(self, sender, kind, body):
        message = Message(sender=sender, recipient="me", kind=kind,
                          body=body, sent_at=0.0)
        self.handlers[kind](message)

    def sent_kinds(self, kind):
        return [entry for entry in self.sent if entry[2] == kind]


def _service(transport, **kwargs):
    kwargs.setdefault("address", "me")
    kwargs.setdefault("policy", BackoffPolicy(
        base_delay=0.1, multiplier=2.0, max_delay=1.0, jitter=0.0,
        max_attempts=3))
    return DiscoveryService(transport, **kwargs)


def _entry(address, port, role="full"):
    return {"address": address, "host": "127.0.0.1", "port": port,
            "role": role}


class TestBootstrapUnit:
    def test_no_seeds_is_bootstrapped_immediately(self):
        transport = StubTransport()
        service = _service(transport)
        service.start()
        assert service.bootstrapped
        assert transport.sent == []
        assert transport.timers == []

    def test_seed_addresses_prime_the_directory(self):
        transport = StubTransport()
        _service(transport, seeds=[("n0", "127.0.0.1", 4000)])
        assert transport.directory["n0"] == ("127.0.0.1", 4000)

    def test_hello_retries_until_attempts_exhaust(self):
        transport = StubTransport()
        registry = MetricsRegistry()
        service = _service(transport, seeds=[("n0", "127.0.0.1", 4000)],
                           telemetry=registry)
        service.start()
        while transport.timers:
            transport.fire_next()
        hellos = transport.sent_kinds(HELLO_KIND)
        assert len(hellos) == 3  # max_attempts
        assert service.hello_attempts == 3
        assert not service.bootstrapped
        assert registry.counter(
            "repro_discovery_bootstrap_exhausted_total").value() == 1

    def test_peers_reply_stops_the_retry_loop(self):
        transport = StubTransport()
        learned = []
        service = _service(transport, seeds=[("n0", "127.0.0.1", 4000)],
                           on_full_peer=learned.append)
        service.start()
        assert len(transport.sent_kinds(HELLO_KIND)) == 1
        transport.deliver("n0", PEERS_KIND, {"peers": [
            _entry("n0", 4000), _entry("n2", 4200),
            _entry("me", 4100),  # our own echo must be ignored
        ]})
        assert service.bootstrapped
        assert learned == ["n0", "n2"]
        assert transport.directory["n2"] == ("127.0.0.1", 4200)
        assert service.full_peers() == ["n0", "n2"]
        while transport.timers:  # the pending retry timer is now inert
            transport.fire_next()
        assert len(transport.sent_kinds(HELLO_KIND)) == 1

    def test_hello_replies_with_full_table_including_both_ends(self):
        transport = StubTransport(advertised=("127.0.0.1", 4100))
        service = _service(transport)
        service.start()
        transport.deliver("n5", HELLO_KIND, _entry("n5", 4500))
        replies = transport.sent_kinds(PEERS_KIND)
        assert len(replies) == 1
        _, recipient, _, body = replies[0]
        assert recipient == "n5"
        table = {row["address"]: row for row in body["peers"]}
        assert table["n5"]["port"] == 4500
        assert table["me"] == _entry("me", 4100)


class TestAnnouncements:
    def _mesh(self):
        """A service that already knows full peers a, b and c."""
        transport = StubTransport()
        learned = []
        service = _service(transport, on_full_peer=learned.append)
        service.start()
        for address, port in (("a", 4001), ("b", 4002), ("c", 4003)):
            transport.deliver(address, ANNOUNCE_KIND, _entry(address, port))
        transport.sent.clear()
        return transport, service, learned

    def test_hello_is_announced_to_other_full_peers(self):
        transport, service, _ = self._mesh()
        transport.deliver("n5", HELLO_KIND, _entry("n5", 4500))
        floods = transport.sent_kinds(ANNOUNCE_KIND)
        # To a, b and c — never back to the subject itself.
        assert sorted(entry[1] for entry in floods) == ["a", "b", "c"]
        assert all(entry[3]["address"] == "n5" for entry in floods)

    def test_duplicate_announce_is_idempotent(self):
        transport, service, learned = self._mesh()
        registry_before = dict(service.peers)
        transport.deliver("a", ANNOUNCE_KIND, _entry("b", 4002))
        assert service.peers == registry_before
        assert transport.sent_kinds(ANNOUNCE_KIND) == []  # no re-flood
        assert learned == ["a", "b", "c"]  # callback never repeated

    def test_changed_entry_refloods_excluding_the_bearer(self):
        transport, service, learned = self._mesh()
        # b rejoined on a fresh port; a relays the announcement.  The
        # re-flood reaches c (the peer a might not have known about)
        # but neither the bearer a nor the subject b.
        transport.deliver("a", ANNOUNCE_KIND, _entry("b", 5002))
        assert transport.directory["b"] == ("127.0.0.1", 5002)
        floods = transport.sent_kinds(ANNOUNCE_KIND)
        assert [(entry[1], entry[3]["port"]) for entry in floods] == \
            [("c", 5002)]
        assert learned == ["a", "b", "c"]  # changed, not *newly known*

    def test_driver_entries_never_reach_on_full_peer(self):
        transport, service, learned = self._mesh()
        transport.deliver("driver-1", HELLO_KIND, {
            "address": "driver-1", "host": None, "port": None,
            "role": "driver"})
        assert learned == ["a", "b", "c"]
        assert "driver-1" not in service.full_peers()
        assert "driver-1" not in transport.directory
        assert "driver-1" in service.peers  # still answered and recorded

    def test_own_address_is_never_learned(self):
        transport, service, learned = self._mesh()
        transport.deliver("a", ANNOUNCE_KIND, _entry("me", 9999))
        assert "me" not in service.peers
        assert "me" not in transport.directory
        assert learned == ["a", "b", "c"]


# -- real-TCP integration --------------------------------------------------

def _tcp_node(address, port, *, seeds=(), on_full_peer=None):
    """One listening Recorder node with discovery on its transport."""
    scheduler = AsyncioScheduler(time_scale=20.0)
    transport = _transport(scheduler, {})
    node = Recorder(address)
    runner = NodeRunner(node, transport, listen=("127.0.0.1", port))
    service = DiscoveryService(
        transport, address=address, seeds=seeds, policy=FAST_HELLO,
        on_full_peer=on_full_peer)
    return runner, service


class TestDiscoveryOverTcp:
    def test_three_nodes_full_mesh_through_one_seed(self, fleet_sandbox):
        async def scenario():
            seed_runner, seed_service = _tcp_node("n0", 0)
            await seed_runner.start()
            seed_service.start()
            seeds = [("n0", "127.0.0.1", seed_runner.bound_port)]

            peers1, peers2 = [], []
            runner1, service1 = _tcp_node("n1", 0, seeds=seeds,
                                          on_full_peer=peers1.append)
            runner2, service2 = _tcp_node("n2", 0, seeds=seeds,
                                          on_full_peer=peers2.append)
            await runner1.start()
            service1.start()
            await runner2.start()
            service2.start()
            try:
                await _wait_for(lambda: (
                    service1.bootstrapped and service2.bootstrapped
                    and service1.full_peers() == ["n0", "n2"]
                    and service2.full_peers() == ["n0", "n1"]))
                assert seed_service.full_peers() == ["n1", "n2"]
                # Every transport can now dial every peer directly.
                assert runner1.transport.directory["n2"] == \
                    runner2.transport.advertised_address
                assert runner2.transport.directory["n1"] == \
                    runner1.transport.advertised_address
            finally:
                await runner2.stop()
                await runner1.stop()
                await seed_runner.stop()

        fleet_sandbox.run(scenario())

    def test_seed_down_at_start_bootstraps_after_retry(self,
                                                       fleet_sandbox):
        port = fleet_sandbox.ephemeral_port()

        async def scenario():
            joiner_runner, joiner_service = _tcp_node(
                "n1", 0, seeds=[("n0", "127.0.0.1", port)])
            await joiner_runner.start()
            joiner_service.start()
            try:
                # The seed's port refuses connections; hellos pile into
                # the reconnect loop while attempts climb.
                await _wait_for(
                    lambda: joiner_service.hello_attempts > 1)
                assert not joiner_service.bootstrapped

                fleet_sandbox.release_port(port)  # seed comes up *now*
                seed_runner, seed_service = _tcp_node("n0", port)
                await seed_runner.start()
                seed_service.start()
                try:
                    await _wait_for(lambda: joiner_service.bootstrapped)
                    assert joiner_service.full_peers() == ["n0"]
                    assert seed_service.full_peers() == ["n1"]
                finally:
                    await seed_runner.stop()
            finally:
                await joiner_runner.stop()

        fleet_sandbox.run(scenario())

    def test_rejoin_with_fresh_port_retires_stale_address(self,
                                                          fleet_sandbox):
        async def scenario():
            seed_runner, seed_service = _tcp_node("n0", 0)
            await seed_runner.start()
            seed_service.start()
            seeds = [("n0", "127.0.0.1", seed_runner.bound_port)]

            runner1, service1 = _tcp_node("n1", 0, seeds=seeds)
            runner2, service2 = _tcp_node("n2", 0, seeds=seeds)
            await runner1.start()
            service1.start()
            await runner2.start()
            service2.start()
            reborn = None
            try:
                await _wait_for(lambda: (
                    service1.bootstrapped and service2.bootstrapped
                    and "n2" in runner1.transport.directory))
                stale = runner1.transport.directory["n2"]

                # n2 dies and rejoins on a fresh ephemeral port.
                await runner2.stop()
                reborn, reborn_service = _tcp_node("n2", 0, seeds=seeds)
                await reborn.start()
                reborn_service.start()
                fresh = reborn.transport.advertised_address
                assert fresh != stale

                # The announce flood retires the stale address on n1,
                # which n2 never spoke to directly this lifetime.
                await _wait_for(lambda: (
                    runner1.transport.directory.get("n2") == fresh))
                assert seed_runner.transport.directory["n2"] == fresh

                # And the fresh route actually works end to end.
                runner1.node.send("n2", "ping", {"i": 1})
                await _wait_for(lambda: any(
                    m.kind == "ping" for m in reborn.node.received))
            finally:
                if reborn is not None:
                    await reborn.stop()
                await runner1.stop()
                await seed_runner.stop()

        fleet_sandbox.run(scenario())
