"""Tests for repro.network.gossip."""

import pytest
from hypothesis import given, strategies as st

from repro.network.gossip import GossipRelay, SolidificationBuffer


class TestGossipRelay:
    def test_mark_seen_first_time(self):
        relay = GossipRelay()
        assert relay.mark_seen(b"item-1")
        assert relay.has_seen(b"item-1")

    def test_duplicates_suppressed(self):
        relay = GossipRelay()
        relay.mark_seen(b"item-1")
        assert not relay.mark_seen(b"item-1")
        assert relay.duplicates_suppressed == 1

    def test_relay_targets_exclude_source(self):
        relay = GossipRelay(peers=["a", "b", "c"])
        assert relay.relay_targets(b"x", exclude="b") == ["a", "c"]

    def test_relay_targets_full_fanout(self):
        relay = GossipRelay(peers=["a", "b"])
        assert relay.relay_targets(b"x") == ["a", "b"]

    def test_peer_management(self):
        relay = GossipRelay()
        relay.add_peer("a")
        relay.add_peer("a")  # idempotent
        relay.add_peer("b")
        assert relay.peers == ["a", "b"]
        relay.remove_peer("a")
        relay.remove_peer("ghost")  # no-op
        assert relay.peers == ["b"]

    def test_seen_count(self):
        relay = GossipRelay()
        relay.mark_seen(b"1")
        relay.mark_seen(b"2")
        relay.mark_seen(b"1")
        assert relay.seen_count == 2

    def test_has_peer(self):
        relay = GossipRelay(peers=["a", "b"])
        assert relay.has_peer("a")
        assert not relay.has_peer("ghost")
        relay.remove_peer("a")
        assert not relay.has_peer("a")

    def test_mark_seen_batch(self):
        relay = GossipRelay()
        relay.mark_seen(b"1")
        assert relay.mark_seen_batch([b"1", b"2", b"3", b"2"]) == 2
        assert relay.seen_count == 3
        assert relay.duplicates_suppressed == 2  # b"1" and second b"2"

    def test_mark_seen_batch_all_duplicates(self):
        relay = GossipRelay()
        relay.mark_seen_batch([b"1", b"2"])
        assert relay.mark_seen_batch([b"1", b"2"]) == 0
        assert relay.duplicates_suppressed == 2

    def test_mark_seen_batch_empty(self):
        relay = GossipRelay()
        assert relay.mark_seen_batch([]) == 0
        assert relay.duplicates_suppressed == 0

    def test_batch_and_single_interleave(self):
        relay = GossipRelay()
        relay.mark_seen_batch([b"1"])
        assert not relay.mark_seen(b"1")
        relay.mark_seen(b"2")
        assert relay.mark_seen_batch([b"2", b"3"]) == 1
        assert relay.seen_count == 3


class TestSolidificationBuffer:
    def test_park_and_satisfy(self):
        buffer = SolidificationBuffer()
        buffer.park(b"child", "child-item", [b"parent"])
        assert b"child" in buffer
        released = buffer.satisfy(b"parent")
        assert released == [(b"child", "child-item")]
        assert b"child" not in buffer

    def test_multiple_dependencies(self):
        buffer = SolidificationBuffer()
        buffer.park(b"child", "item", [b"p1", b"p2"])
        assert buffer.satisfy(b"p1") == []
        assert buffer.satisfy(b"p2") == [(b"child", "item")]

    def test_satisfy_releases_all_waiters(self):
        buffer = SolidificationBuffer()
        buffer.park(b"a", "A", [b"p"])
        buffer.park(b"b", "B", [b"p"])
        released = dict(buffer.satisfy(b"p"))
        assert released == {b"a": "A", b"b": "B"}

    def test_satisfy_unknown_dependency_is_noop(self):
        buffer = SolidificationBuffer()
        assert buffer.satisfy(b"nothing") == []

    def test_park_requires_missing(self):
        buffer = SolidificationBuffer()
        with pytest.raises(ValueError):
            buffer.park(b"x", "item", [])

    def test_double_park_is_idempotent(self):
        buffer = SolidificationBuffer()
        buffer.park(b"x", "item", [b"p"])
        buffer.park(b"x", "item", [b"p"])
        assert len(buffer) == 1

    def test_capacity_evicts_oldest(self):
        buffer = SolidificationBuffer(capacity=2)
        buffer.park(b"a", "A", [b"p"])
        buffer.park(b"b", "B", [b"p"])
        buffer.park(b"c", "C", [b"p"])
        assert buffer.evictions == 1
        assert b"a" not in buffer
        released = dict(buffer.satisfy(b"p"))
        assert set(released) == {b"b", b"c"}

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SolidificationBuffer(capacity=0)

    def test_eviction_order_survives_satisfy_and_repark(self):
        # Regression for the OrderedDict-backed queue: eviction must
        # still walk strict park order, with a satisfied-then-reparked
        # id treated as new (back of the queue), and an idempotent
        # double park keeping its original slot.
        buffer = SolidificationBuffer(capacity=3)
        buffer.park(b"a", "A", [b"p"])
        buffer.park(b"b", "B", [b"q"])
        buffer.park(b"c", "C", [b"p"])
        buffer.park(b"b", "B", [b"q"])  # idempotent: keeps slot 2
        assert buffer.satisfy(b"q") == [(b"b", "B")]
        buffer.park(b"b", "B", [b"q"])  # reparked: now newest
        buffer.park(b"d", "D", [b"p"])  # over capacity: evicts a
        assert buffer.evictions == 1
        assert b"a" not in buffer
        buffer.park(b"e", "E", [b"p"])  # evicts c (b was reparked later)
        assert buffer.evictions == 2
        assert b"c" not in buffer
        assert b"b" in buffer

    def test_eviction_order_matches_list_reference(self):
        # Byte-identical eviction order versus a naive list-backed
        # simulation of the pre-OrderedDict implementation.
        import random

        rng = random.Random(0xB107)
        buffer = SolidificationBuffer(capacity=8)
        reference_order = []  # the old _insertion_order list
        evicted = []
        original_evict = buffer._evict_oldest

        def traced_evict():
            next(iter(buffer._parked))  # peek before eviction
            oldest = reference_order.pop(0)
            evicted.append(oldest)
            original_evict()

        buffer._evict_oldest = traced_evict
        for step in range(300):
            item_id = bytes([rng.randrange(32)])
            action = rng.random()
            if action < 0.7:
                if item_id not in buffer and len(buffer) >= 8:
                    pass  # traced_evict pops the reference head
                already = item_id in buffer
                buffer.park(item_id, step, [bytes([rng.randrange(8)]) + b"p"])
                if not already:
                    reference_order.append(item_id)
            else:
                released = buffer.satisfy(bytes([rng.randrange(8)]) + b"p")
                for released_id, _ in released:
                    reference_order.remove(released_id)
            assert list(buffer._parked) == reference_order
        assert buffer.evictions == len(evicted)

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=30, unique=True))
    def test_property_all_parked_eventually_released(self, ids):
        buffer = SolidificationBuffer()
        dependency = b"shared-parent"
        for i in ids:
            buffer.park(bytes([i]), i, [dependency])
        released = buffer.satisfy(dependency)
        assert sorted(item for _, item in released) == sorted(ids)
        assert len(buffer) == 0
