"""Tests for repro.network.gossip."""

import pytest
from hypothesis import given, strategies as st

from repro.network.gossip import GossipRelay, SolidificationBuffer


class TestGossipRelay:
    def test_mark_seen_first_time(self):
        relay = GossipRelay()
        assert relay.mark_seen(b"item-1")
        assert relay.has_seen(b"item-1")

    def test_duplicates_suppressed(self):
        relay = GossipRelay()
        relay.mark_seen(b"item-1")
        assert not relay.mark_seen(b"item-1")
        assert relay.duplicates_suppressed == 1

    def test_relay_targets_exclude_source(self):
        relay = GossipRelay(peers=["a", "b", "c"])
        assert relay.relay_targets(b"x", exclude="b") == ["a", "c"]

    def test_relay_targets_full_fanout(self):
        relay = GossipRelay(peers=["a", "b"])
        assert relay.relay_targets(b"x") == ["a", "b"]

    def test_peer_management(self):
        relay = GossipRelay()
        relay.add_peer("a")
        relay.add_peer("a")  # idempotent
        relay.add_peer("b")
        assert relay.peers == ["a", "b"]
        relay.remove_peer("a")
        relay.remove_peer("ghost")  # no-op
        assert relay.peers == ["b"]

    def test_seen_count(self):
        relay = GossipRelay()
        relay.mark_seen(b"1")
        relay.mark_seen(b"2")
        relay.mark_seen(b"1")
        assert relay.seen_count == 2


class TestSolidificationBuffer:
    def test_park_and_satisfy(self):
        buffer = SolidificationBuffer()
        buffer.park(b"child", "child-item", [b"parent"])
        assert b"child" in buffer
        released = buffer.satisfy(b"parent")
        assert released == [(b"child", "child-item")]
        assert b"child" not in buffer

    def test_multiple_dependencies(self):
        buffer = SolidificationBuffer()
        buffer.park(b"child", "item", [b"p1", b"p2"])
        assert buffer.satisfy(b"p1") == []
        assert buffer.satisfy(b"p2") == [(b"child", "item")]

    def test_satisfy_releases_all_waiters(self):
        buffer = SolidificationBuffer()
        buffer.park(b"a", "A", [b"p"])
        buffer.park(b"b", "B", [b"p"])
        released = dict(buffer.satisfy(b"p"))
        assert released == {b"a": "A", b"b": "B"}

    def test_satisfy_unknown_dependency_is_noop(self):
        buffer = SolidificationBuffer()
        assert buffer.satisfy(b"nothing") == []

    def test_park_requires_missing(self):
        buffer = SolidificationBuffer()
        with pytest.raises(ValueError):
            buffer.park(b"x", "item", [])

    def test_double_park_is_idempotent(self):
        buffer = SolidificationBuffer()
        buffer.park(b"x", "item", [b"p"])
        buffer.park(b"x", "item", [b"p"])
        assert len(buffer) == 1

    def test_capacity_evicts_oldest(self):
        buffer = SolidificationBuffer(capacity=2)
        buffer.park(b"a", "A", [b"p"])
        buffer.park(b"b", "B", [b"p"])
        buffer.park(b"c", "C", [b"p"])
        assert buffer.evictions == 1
        assert b"a" not in buffer
        released = dict(buffer.satisfy(b"p"))
        assert set(released) == {b"b", b"c"}

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SolidificationBuffer(capacity=0)

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=30, unique=True))
    def test_property_all_parked_eventually_released(self, ids):
        buffer = SolidificationBuffer()
        dependency = b"shared-parent"
        for i in ids:
            buffer.park(bytes([i]), i, [dependency])
        released = buffer.satisfy(dependency)
        assert sorted(item for _, item in released) == sorted(ids)
        assert len(buffer) == 0
