"""The sim≡wire keystone: the same seeded workload through the
discrete-event SimTransport and the asyncio/TCP AsyncioTransport must
converge every replica to byte-identical tangle/ledger/ACL/credit
hashes (the ``repro.storage.differential`` report format)."""

import asyncio

import pytest

from repro.faults.report import canonical_json
from repro.network.differential import (
    FLEET_SCENARIOS,
    build_workload,
    run_fleet_differential,
    run_sim_leg,
    run_wire_leg,
)


class TestWorkload:
    def test_generation_is_deterministic(self):
        a = build_workload(5, transactions=8)
        b = build_workload(5, transactions=8)
        assert a.transactions == b.transactions
        assert a.genesis.to_bytes() == b.genesis.to_bytes()
        assert a.reference_hashes == b.reference_hashes
        assert a.credit_now == b.credit_now

    def test_different_seeds_differ(self):
        assert (build_workload(5, transactions=8).transactions
                != build_workload(6, transactions=8).transactions)

    def test_rejects_tiny_workloads(self):
        with pytest.raises(ValueError):
            build_workload(5, transactions=2)


class TestSimLeg:
    def test_converges_and_is_byte_deterministic(self):
        workload = build_workload(9, transactions=10)
        report1, nodes1, _, rejected1 = run_sim_leg(
            workload, node_count=3, seed=9, scenario="mini")
        report2, nodes2, _, rejected2 = run_sim_leg(
            workload, node_count=3, seed=9, scenario="mini")
        assert rejected1 == [] and rejected2 == []
        assert nodes1 == nodes2
        # The sim leg is *bit*-deterministic: the full convergence
        # report (durations, counters, everything) replays identically.
        assert canonical_json(report1.to_dict()) \
            == canonical_json(report2.to_dict())
        hashes = set(canonical_json(h) for h in nodes1.values())
        assert len(hashes) == 1
        assert next(iter(nodes1.values())) == workload.reference_hashes


class TestWireLeg:
    def test_converges_to_the_reference(self, fleet_sandbox):
        workload = build_workload(9, transactions=10)
        report, per_node, _, rejected = fleet_sandbox.run(
            run_wire_leg(workload, node_count=3, seed=9,
                         scenario="mini", time_scale=50.0),
            timeout=120.0)
        assert rejected == []
        assert report.converged
        for hashes in per_node.values():
            assert hashes == workload.reference_hashes


class TestDifferential:
    def test_mini_scenario_matches(self):
        outcome = run_fleet_differential(seed=5, scenario="mini",
                                         time_scale=50.0)
        result = outcome.result
        assert result["matched"], result
        assert result["sim"]["hashes"] == result["reference"]
        assert result["wire"]["hashes"] == result["reference"]
        # All four state dimensions are covered by the comparison.
        assert set(result["reference"]) \
            == {"tangle", "ledger", "acl", "credit"}
        # Both legs emit ChaosRunner-format convergence reports.
        assert outcome.sim_report.scenario == "fleet-mini-sim"
        assert outcome.wire_report.scenario == "fleet-mini-wire"
        assert outcome.sim_report.converged
        assert outcome.wire_report.converged

    def test_unknown_scenario_refused(self):
        with pytest.raises(ValueError):
            run_fleet_differential(seed=5, scenario="nope")

    def test_scenario_catalog_shape(self):
        assert "smoke" in FLEET_SCENARIOS
        assert FLEET_SCENARIOS["smoke"]["node_count"] == 5
