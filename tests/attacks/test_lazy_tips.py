"""Tests for repro.attacks.lazy_tips: the credit mechanism must punish
lazy approvals and the punishment must bite (Section VI-C)."""

import random

import pytest

from repro.attacks.lazy_tips import LazyLightNode
from repro.core.biot import BIoTConfig, BIoTSystem
from repro.devices.sensors import TemperatureSensor


def build_with_lazy_node(*, seed=51, report_interval=2.0):
    system = BIoTSystem.build(BIoTConfig(
        device_count=2, gateway_count=1, seed=seed,
        initial_difficulty=6, report_interval=report_interval,
    ))
    from repro.crypto.keys import KeyPair
    lazy_keys = KeyPair.generate(seed=b"lazy-node")
    lazy = LazyLightNode(
        "lazy-device", lazy_keys,
        gateway="gateway-0",
        manager=system.manager.acl.manager,
        sensor=TemperatureSensor(seed=99),
        report_interval=report_interval,
        rng=random.Random(77),
        fixed_branch=system.manager.tangle.genesis.tx_hash,
    )
    system.network.attach(lazy)
    system.manager.authorize_devices(
        [k.public for k in system.device_keys.values()] + [lazy_keys.public]
    )
    system.run_for(2.0)
    return system, lazy


class TestLazyPunishment:
    def test_lazy_node_detected_and_punished(self):
        system, lazy = build_with_lazy_node()
        lazy.start()
        system.run_for(90.0)
        gateway = system.gateways[0]
        assert gateway.consensus.lazy_detections > 0
        assert (gateway.consensus.registry.malicious_count(lazy.keypair.node_id)
                > 0)
        # The assigned difficulty must have risen above the initial 6.
        assert max(lazy.stats.assigned_difficulties) > 6

    def test_honest_node_unaffected_by_lazy_peer(self):
        system, lazy = build_with_lazy_node()
        honest = system.devices[0]
        lazy.start()
        honest.start()
        system.run_for(90.0)
        assert honest.stats.assigned_difficulties[-1] <= 6
        assert honest.stats.submissions_accepted > 0
        gateway = system.gateways[0]
        assert (gateway.consensus.registry.malicious_count(
            honest.keypair.node_id) == 0)

    def test_lazy_pow_cost_explodes_vs_honest(self):
        """The paper's claim is about attack *cost*: "force malicious
        nodes to increase the cost of attacks".  Once detection kicks
        in, the lazy node burns an order of magnitude more PoW time per
        transaction than an honest device."""
        system, lazy = build_with_lazy_node(report_interval=1.0)
        honest = system.devices[0]
        honest.report_interval = 1.0
        lazy.start()
        honest.start()
        system.run_for(120.0)
        # Compare steady-state costs (second half of the run).
        half = len(lazy.stats.pow_times) // 2
        lazy_cost = sum(lazy.stats.pow_times[half:]) / len(lazy.stats.pow_times[half:])
        honest_half = len(honest.stats.pow_times) // 2
        honest_cost = (sum(honest.stats.pow_times[honest_half:])
                       / len(honest.stats.pow_times[honest_half:]))
        assert lazy_cost > 5 * honest_cost

    def test_first_lazy_submissions_attach(self):
        """Lazy approvals are structurally valid: the tangle accepts
        them, punishment comes via difficulty (not censorship)."""
        system, lazy = build_with_lazy_node()
        lazy.start()
        system.run_for(30.0)
        assert lazy.stats.submissions_accepted > 0
        assert lazy.lazy_submissions > 0

    def test_pin_seeds_from_first_response_when_unset(self):
        system, _ = build_with_lazy_node()
        from repro.crypto.keys import KeyPair
        keys = KeyPair.generate(seed=b"lazy-unpinned")
        unpinned = LazyLightNode(
            "lazy-2", keys, gateway="gateway-0",
            manager=system.manager.acl.manager,
            sensor=TemperatureSensor(seed=98),
            report_interval=2.0, rng=random.Random(3),
        )
        system.network.attach(unpinned)
        system.manager.authorize_devices([keys.public])
        system.run_for(2.0)
        unpinned.start()
        system.run_for(10.0)
        assert unpinned.fixed_branch is not None
