"""Tests for repro.attacks.ddos and the single-point-of-failure defence:
crash or flood one gateway, fail devices over, service continues and
no data is lost (Section VI-C)."""

import random

import pytest

from repro.attacks.ddos import DDoSAttacker, failover_devices
from repro.core.biot import BIoTConfig, BIoTSystem


def build_system(seed=81):
    system = BIoTSystem.build(BIoTConfig(
        device_count=4, gateway_count=2, seed=seed,
        initial_difficulty=6, report_interval=2.0,
    ))
    system.initialize()
    return system


class TestFlooding:
    def test_junk_is_ignored_by_gateway(self):
        system = build_system()
        attacker = DDoSAttacker("ddos", victim="gateway-0",
                                burst_size=20, burst_interval=0.5,
                                rng=random.Random(9))
        system.network.attach(attacker)
        attacker.start()
        for device in system.devices:
            device.start()
        system.run_for(30.0)
        assert attacker.stats.messages_sent > 100
        # Gateway still serves its devices despite the flood.
        victims = [d for d in system.devices if d.gateway == "gateway-0"]
        assert all(d.stats.submissions_accepted > 0 for d in victims)

    def test_burst_size_validated(self):
        with pytest.raises(ValueError):
            DDoSAttacker("d", victim="g", burst_size=0)

    def test_stop(self):
        system = build_system()
        attacker = DDoSAttacker("ddos", victim="gateway-0",
                                rng=random.Random(9))
        system.network.attach(attacker)
        attacker.start()
        system.run_for(3.0)
        attacker.stop()
        sent = attacker.stats.messages_sent
        system.run_for(5.0)
        assert attacker.stats.messages_sent == sent


class TestFloodSaturation:
    """With per-node service times, a flood measurably degrades the
    victim and failover restores latency."""

    def _saturated_system(self):
        system = build_system(seed=83)
        for gateway in system.gateways:
            gateway.service_time_s = 0.005  # 200 msg/s per gateway
        attacker = DDoSAttacker("flood", victim="gateway-0",
                                burst_size=400, burst_interval=1.0,
                                rng=random.Random(11))
        system.network.attach(attacker)
        return system, attacker

    def test_flood_starves_victim_gateway(self):
        system, attacker = self._saturated_system()
        for device in system.devices:
            device.start()
        system.run_for(10.0)  # clean baseline
        accepted_before = {
            d.address: d.stats.submissions_accepted for d in system.devices
        }
        attacker.start()
        system.run_for(30.0)
        victims = [d for d in system.devices if d.gateway == "gateway-0"]
        others = [d for d in system.devices if d.gateway != "gateway-0"]
        # The flood's backlog exceeds the devices' RPC timeout: victim
        # requests mostly expire unanswered.
        victim_gateway = system.network.node("gateway-0")
        assert victim_gateway.backlog_seconds > 10.0
        victim_gain = sum(
            d.stats.submissions_accepted - accepted_before[d.address]
            for d in victims
        )
        other_gain = sum(
            d.stats.submissions_accepted - accepted_before[d.address]
            for d in others
        )
        assert victim_gain < other_gain / 3
        assert sum(d.timeouts for d in victims) > 0
        # The unflooded gateway's devices are unaffected.
        for device in others:
            recent = device.stats.submit_latencies[-3:]
            assert recent
            assert sum(recent) / len(recent) < 1.0

    def test_failover_escapes_the_flood(self):
        system, attacker = self._saturated_system()
        for device in system.devices:
            device.start()
        attacker.start()
        system.run_for(20.0)
        moved = failover_devices(system.devices, from_gateway="gateway-0",
                                 to_gateway="gateway-1")
        assert moved == 2
        before = {d.address: d.stats.submissions_accepted
                  for d in system.devices}
        system.run_for(25.0)
        for device in system.devices:
            assert device.stats.submissions_accepted > before[device.address]
            recent = device.stats.submit_latencies[-3:]
            assert sum(recent) / len(recent) < 1.5


class TestSinglePointOfFailure:
    def test_crash_without_failover_stalls_victims_only(self):
        system = build_system()
        for device in system.devices:
            device.start()
        system.run_for(15.0)
        system.network.take_down("gateway-0")
        before = {d.address: d.stats.submissions_accepted
                  for d in system.devices}
        system.run_for(20.0)
        for device in system.devices:
            gained = device.stats.submissions_accepted - before[device.address]
            if device.gateway == "gateway-0":
                assert gained == 0
            else:
                assert gained > 0

    def test_failover_restores_service(self):
        system = build_system()
        for device in system.devices:
            device.start()
        system.run_for(15.0)
        system.network.take_down("gateway-0")
        switched = failover_devices(system.devices,
                                    from_gateway="gateway-0",
                                    to_gateway="gateway-1")
        assert switched == 2
        before = {d.address: d.stats.submissions_accepted
                  for d in system.devices}
        system.run_for(25.0)
        for device in system.devices:
            assert device.stats.submissions_accepted > before[device.address]

    def test_no_data_lost_after_crash(self):
        """Data accepted before the crash survives on the other replicas
        (the ledger is redundantly replicated by all full nodes)."""
        system = build_system()
        for device in system.devices:
            device.start()
        system.run_for(20.0)
        crashed = system.gateways[0]
        survivor = system.gateways[1]
        accepted_by_crashed = {
            tx.tx_hash for tx in crashed.tangle if tx.kind == "data"
        }
        system.network.take_down("gateway-0")
        system.run_for(5.0)
        surviving = {tx.tx_hash for tx in survivor.tangle}
        missing = accepted_by_crashed - surviving
        assert not missing

    def test_recovered_gateway_can_reconnect_devices(self):
        system = build_system()
        for device in system.devices:
            device.start()
        system.run_for(10.0)
        system.network.take_down("gateway-0")
        system.run_for(10.0)
        system.network.bring_up("gateway-0")
        before = {d.address: d.stats.submissions_accepted
                  for d in system.devices if d.gateway == "gateway-0"}
        system.run_for(20.0)
        for device in system.devices:
            if device.gateway == "gateway-0":
                assert device.stats.submissions_accepted > before[device.address]
