"""Tests for repro.attacks.double_spend: conflicts must be detected,
exactly one version accepted per replica, and the attacker punished."""

import random

import pytest

from repro.attacks.double_spend import DoubleSpendAttacker
from repro.core.biot import BIoTConfig, BIoTSystem
from repro.crypto.keys import KeyPair


def build_with_attacker(*, seed=61, amount=1, attack_interval=8.0):
    system = BIoTSystem.build(BIoTConfig(
        device_count=2, gateway_count=2, seed=seed,
        initial_difficulty=6, report_interval=2.0,
    ))
    attacker_keys = KeyPair.generate(seed=b"double-spender")
    recipients = [k.public for k in system.device_keys.values()][:2]
    attacker = DoubleSpendAttacker(
        "attacker", attacker_keys,
        gateways=["gateway-0", "gateway-1"],
        recipients=recipients,
        amount=amount,
        attack_interval=attack_interval,
        rng=random.Random(13),
    )
    system.network.attach(attacker)
    system.manager.authorize_devices(
        [k.public for k in system.device_keys.values()]
        + [attacker_keys.public]
    )
    # Fund the attacker so the transfers are otherwise valid.
    for node in [system.manager] + system.gateways:
        node.ledger.credit(attacker_keys.node_id, 100)
    # Distribute group keys so sensitive devices can report too.
    for device in system.devices:
        if device.sensor.sensitive:
            system.manager.distribute_key(device.address,
                                          device.keypair.public)
    system.run_for(2.0)
    return system, attacker


class TestConstruction:
    def test_needs_two_gateways(self):
        keys = KeyPair.generate(seed=b"ds")
        with pytest.raises(ValueError):
            DoubleSpendAttacker("a", keys, gateways=["g"],
                                recipients=[keys.public, keys.public])

    def test_needs_two_recipients(self):
        keys = KeyPair.generate(seed=b"ds")
        with pytest.raises(ValueError):
            DoubleSpendAttacker("a", keys, gateways=["g1", "g2"],
                                recipients=[keys.public])


class TestDoubleSpendDefence:
    def test_conflict_detected_somewhere(self):
        system, attacker = build_with_attacker()
        attacker.start()
        system.run_for(60.0)
        assert attacker.stats.rounds_started >= 2
        total_conflicts = sum(
            len(node.ledger.conflicts)
            for node in [system.manager] + system.gateways
        )
        assert total_conflicts > 0

    def test_each_replica_accepts_at_most_one_per_sequence(self):
        system, attacker = build_with_attacker()
        attacker.start()
        system.run_for(60.0)
        for node in [system.manager] + system.gateways:
            for sequence in range(attacker.stats.rounds_started):
                spent = node.ledger.spent_tx(attacker.keypair.node_id, sequence)
                # Either unseen (still gossiping) or exactly one winner.
                assert spent is None or isinstance(spent, bytes)
        # Balance can never go below zero however the race resolves.
        for node in [system.manager] + system.gateways:
            assert node.ledger.balance(attacker.keypair.node_id) >= 0

    def test_attacker_credit_punished(self):
        system, attacker = build_with_attacker()
        attacker.start()
        system.run_for(60.0)
        punished_views = [
            node.consensus.registry.malicious_count(attacker.keypair.node_id)
            for node in [system.manager] + system.gateways
        ]
        assert any(count > 0 for count in punished_views)

    def test_difficulty_escalates_with_attacks(self):
        system, attacker = build_with_attacker(attack_interval=5.0)
        attacker.start()
        system.run_for(90.0)
        difficulties = attacker.stats.assigned_difficulties
        assert len(difficulties) >= 2
        assert max(difficulties) > difficulties[0]

    def test_honest_traffic_continues_during_attack(self):
        system, attacker = build_with_attacker()
        for device in system.devices:
            device.start()
        attacker.start()
        system.run_for(60.0)
        for device in system.devices:
            assert device.stats.submissions_accepted > 0

    def test_stop_halts_attack(self):
        system, attacker = build_with_attacker()
        attacker.start()
        system.run_for(20.0)
        attacker.stop()
        rounds = attacker.stats.rounds_started
        system.run_for(30.0)
        assert attacker.stats.rounds_started == rounds
