"""Tests for repro.attacks.sybil: the ACL must starve the swarm."""

import random

import pytest

from repro.attacks.sybil import SybilAttacker
from repro.core.biot import BIoTConfig, BIoTSystem


def build_with_sybil(*, identity_count=8, seed=71):
    system = BIoTSystem.build(BIoTConfig(
        device_count=2, gateway_count=1, seed=seed,
        initial_difficulty=6, report_interval=2.0,
    ))
    attacker = SybilAttacker(
        "sybil-host", gateway="gateway-0",
        identity_count=identity_count,
        request_interval=1.0,
        rng=random.Random(5), seed=seed,
    )
    system.network.attach(attacker)
    system.initialize()
    return system, attacker


class TestSybilDefence:
    def test_all_requests_refused(self):
        system, attacker = build_with_sybil()
        attacker.start()
        system.run_for(20.0)
        assert attacker.stats.tip_requests_sent > 0
        assert attacker.stats.tips_granted == 0
        assert attacker.stats.tips_refused > 0
        assert attacker.stats.submissions_accepted == 0
        assert attacker.stats.submissions_rejected > 0

    def test_tangle_stays_clean(self):
        system, attacker = build_with_sybil()
        attacker.start()
        system.run_for(20.0)
        gateway = system.gateways[0]
        sybil_ids = {identity.node_id for identity in attacker.identities}
        for tx in gateway.tangle:
            assert tx.issuer.node_id not in sybil_ids

    def test_honest_devices_unharmed(self):
        system, attacker = build_with_sybil()
        for device in system.devices:
            device.start()
        attacker.start()
        system.run_for(30.0)
        for device in system.devices:
            assert device.stats.submissions_accepted > 0

    def test_unauthorized_counter_reflects_swarm(self):
        system, attacker = build_with_sybil(identity_count=5)
        attacker.start()
        system.run_for(10.0)
        gateway = system.gateways[0]
        assert gateway.stats.unauthorized_rejected >= 5

    def test_identity_count_validated(self):
        with pytest.raises(ValueError):
            SybilAttacker("s", gateway="g", identity_count=0)

    def test_stop(self):
        system, attacker = build_with_sybil()
        attacker.start()
        system.run_for(5.0)
        attacker.stop()
        sent = attacker.stats.tip_requests_sent
        system.run_for(10.0)
        assert attacker.stats.tip_requests_sent == sent
