"""Tests for repro.attacks.parasite (parasite-chain release)."""

import pytest

from repro.attacks.parasite import ParasiteOutcome, simulate_parasite_release
from repro.tangle.tip_selection import (
    UniformRandomTipSelector,
    WeightedRandomWalkSelector,
)


class TestScenarioMechanics:
    def test_outcome_fields_consistent(self):
        outcome = simulate_parasite_release(seed=1)
        assert outcome.parasite_size == 40
        assert outcome.honest_after_release == 60
        assert outcome.approvals_total == 2 * outcome.honest_after_release
        assert 0 <= outcome.approvals_captured <= outcome.approvals_total
        assert 0.0 <= outcome.capture_ratio <= 1.0

    def test_zero_honest_after_is_safe(self):
        outcome = simulate_parasite_release(honest_after=0, seed=1)
        assert outcome.capture_ratio == 0.0

    def test_deterministic_given_seed(self):
        a = simulate_parasite_release(seed=3)
        b = simulate_parasite_release(seed=3)
        assert a == b


class TestDefence:
    def test_uniform_selection_is_vulnerable(self):
        """Under uniform tip selection the released broom's bristles
        dominate the tip pool and capture a large approval share."""
        outcome = simulate_parasite_release(
            selector=UniformRandomTipSelector(), seed=5)
        assert outcome.capture_ratio > 0.2

    def test_mcmc_starves_the_parasite(self):
        uniform = simulate_parasite_release(
            selector=UniformRandomTipSelector(), seed=5)
        strong = simulate_parasite_release(
            selector=WeightedRandomWalkSelector(alpha=1.0), seed=5)
        assert strong.capture_ratio < uniform.capture_ratio
        assert strong.capture_ratio < 0.05

    def test_defence_scales_with_alpha(self):
        ratios = []
        for alpha in (0.01, 0.1, 1.0):
            outcome = simulate_parasite_release(
                selector=WeightedRandomWalkSelector(alpha=alpha), seed=7)
            ratios.append(outcome.capture_ratio)
        # Monotone non-increasing capture as the weight bias grows.
        assert ratios[0] >= ratios[1] >= ratios[2]

    def test_bigger_parasite_no_better_under_mcmc(self):
        small = simulate_parasite_release(
            selector=WeightedRandomWalkSelector(alpha=1.0),
            parasite_size=20, seed=9)
        large = simulate_parasite_release(
            selector=WeightedRandomWalkSelector(alpha=1.0),
            parasite_size=80, seed=9)
        # Spending 4x the work buys the attacker essentially nothing.
        assert large.capture_ratio <= small.capture_ratio + 0.02
