"""Tests for the ``repro chaos`` CLI: exit codes, the scenario
catalog listing, and byte-determinism of the written report."""

import json

from repro.cli import main
from repro.faults.scenarios import SCENARIOS


class TestListing:
    def test_list_prints_catalog(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["chaos", "--scenario", "no-such-thing"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "smoke" in err  # the catalog is named in the hint


class TestRun:
    def test_smoke_run_is_byte_deterministic(self, tmp_path, capsys):
        first = tmp_path / "one.json"
        second = tmp_path / "two.json"
        assert main(["chaos", "--scenario", "smoke", "--seed", "7",
                     "--out", str(first)]) == 0
        assert main(["chaos", "--scenario", "smoke", "--seed", "7",
                     "--out", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_out_file_is_canonical_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["chaos", "--scenario", "smoke", "--seed", "7",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        text = out.read_text()
        assert text.endswith("\n")
        report = json.loads(text)
        assert report["scenario"] == "smoke"
        assert report["seed"] == 7
        assert report["converged"] is True
        assert report["node_hashes"]
        # Canonical form: sorted keys, compact separators, one line.
        assert text == json.dumps(report, sort_keys=True,
                                  separators=(",", ":")) + "\n"

    def test_stdout_carries_the_report(self, capsys):
        assert main(["chaos", "--scenario", "smoke", "--seed", "7"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scenario"] == "smoke"
        assert report["counters"]["faults_injected"] >= 1
