"""Tests for targeted parent recovery: a gossiped transaction whose
parent was lost must un-park itself by re-requesting the missing hash
from peers, with backoff, instead of waiting for a global sync."""

import random

import pytest

from repro.core.consensus import CreditBasedConsensus
from repro.crypto.keys import KeyPair
from repro.faults.backoff import BackoffPolicy
from repro.network.gossip import SolidificationBuffer
from repro.network.network import Network
from repro.network.simulator import EventScheduler
from repro.nodes.full_node import FullNode
from repro.nodes.manager import ManagerNode
from repro.pow.engine import PowEngine
from repro.devices.profiles import PC
from repro.tangle.transaction import Transaction, TransactionKind


@pytest.fixture()
def pair():
    """Two full nodes, peered, plus an issuing keypair."""
    scheduler = EventScheduler()
    network = Network(scheduler, rng=random.Random(5))
    manager_keys = KeyPair.generate(seed=b"pr-manager")
    genesis = ManagerNode.create_genesis(manager_keys)
    policy = BackoffPolicy(base_delay=0.5, max_delay=4.0,
                           jitter=0.25, max_attempts=4)
    nodes = []
    for name in ("alpha", "beta"):
        node = FullNode(name, genesis, rng=random.Random(7),
                        enforce_pow=False, retry_policy=policy)
        network.attach(node)
        nodes.append(node)
    nodes[0].add_peer("beta")
    nodes[1].add_peer("alpha")
    return scheduler, network, nodes[0], nodes[1], manager_keys, genesis


def make_tx(keys, tangle, *, parent=None, timestamp):
    branch = parent if parent is not None else tangle.genesis.tx_hash
    trunk = tangle.genesis.tx_hash
    return Transaction.create(
        keys, kind=TransactionKind.DATA, payload=b"x",
        timestamp=timestamp, branch=branch, trunk=trunk,
        difficulty=1, nonce=None,
    )


class TestParentRecovery:
    def test_lost_parent_is_refetched(self, pair):
        scheduler, network, alpha, beta, keys, genesis = pair
        # Parent attaches at alpha while the link is cut: its gossip
        # to beta is lost forever.
        network.cut_link("alpha", "beta")
        parent = make_tx(keys, alpha.tangle, timestamp=0.0)
        ok, _ = alpha._ingest(parent, source=None, admit=False)
        assert ok
        scheduler.run_until(1.0)
        network.heal_link("alpha", "beta")
        assert parent.tx_hash not in beta.tangle

        # The child gossips through: beta parks it and re-requests.
        child = make_tx(keys, alpha.tangle, parent=parent.tx_hash,
                        timestamp=1.0)
        ok, _ = alpha._ingest(child, source=None, admit=False)
        assert ok
        scheduler.run_until(10.0)

        assert parent.tx_hash in beta.tangle
        assert child.tx_hash in beta.tangle
        assert len(beta.solidification) == 0
        assert beta.stats.parent_requests_sent >= 1
        assert alpha.stats.parent_requests_served >= 1
        assert beta.stats.parent_fetch_recoveries >= 1

    def test_no_requests_when_nothing_missing(self, pair):
        scheduler, network, alpha, beta, keys, genesis = pair
        tx = make_tx(keys, alpha.tangle, timestamp=0.0)
        alpha._ingest(tx, source=None, admit=False)
        scheduler.run_until(5.0)
        assert tx.tx_hash in beta.tangle
        assert beta.stats.parent_requests_sent == 0
        assert alpha.stats.parent_requests_sent == 0

    def test_exhaustion_stops_requesting(self, pair):
        scheduler, network, alpha, beta, keys, genesis = pair
        network.cut_link("alpha", "beta")
        parent = make_tx(keys, alpha.tangle, timestamp=0.0)
        alpha._ingest(parent, source=None, admit=False)
        scheduler.run_until(1.0)
        # Deliver the child directly (bypassing the cut) so beta parks
        # it while every re-request to alpha keeps getting dropped.
        beta._ingest(make_tx(keys, alpha.tangle, parent=parent.tx_hash,
                             timestamp=1.0), source=None, admit=False)
        scheduler.run_until(60.0)
        assert beta.stats.parent_fetch_exhausted == 1
        assert beta.stats.parent_requests_sent == 4  # max_attempts
        sent_before = beta.stats.parent_requests_sent
        scheduler.run_until(120.0)
        assert beta.stats.parent_requests_sent == sent_before

    def test_deep_gap_recovered_recursively(self, pair):
        scheduler, network, alpha, beta, keys, genesis = pair
        network.cut_link("alpha", "beta")
        chain = []
        parent_hash = None
        for index in range(3):
            tx = make_tx(keys, alpha.tangle, parent=parent_hash,
                         timestamp=float(index))
            alpha._ingest(tx, source=None, admit=False)
            chain.append(tx)
            parent_hash = tx.tx_hash
        scheduler.run_until(4.0)
        network.heal_link("alpha", "beta")
        tip = make_tx(keys, alpha.tangle, parent=parent_hash, timestamp=4.0)
        alpha._ingest(tip, source=None, admit=False)
        scheduler.run_until(20.0)
        # The parent response carries the requested hash plus its
        # ancestors, so the whole lost chain arrives.
        for tx in chain + [tip]:
            assert tx.tx_hash in beta.tangle

    def test_duplicate_parked_child_single_request_loop(self, pair):
        scheduler, network, alpha, beta, keys, genesis = pair
        network.cut_link("alpha", "beta")
        parent = make_tx(keys, alpha.tangle, timestamp=0.0)
        alpha._ingest(parent, source=None, admit=False)
        scheduler.run_until(1.0)
        network.heal_link("alpha", "beta")
        child = make_tx(keys, alpha.tangle, parent=parent.tx_hash,
                        timestamp=1.0)
        # The same child parks once; repeated deliveries must not arm
        # extra request loops for the same missing parent.
        beta._ingest(child, source=None, admit=False)
        beta._ingest(child, source=None, admit=False)
        assert len(beta._parent_requests) == 1
        scheduler.run_until(10.0)
        assert parent.tx_hash in beta.tangle
        assert len(beta._parent_requests) == 0


class TestSolidificationAccessors:
    def test_missing_dependencies_reports_waited_hashes(self):
        buffer = SolidificationBuffer()
        buffer.park(b"c" * 32, "item-c", [b"a" * 32, b"b" * 32])
        buffer.park(b"d" * 32, "item-d", [b"b" * 32])
        assert buffer.missing_dependencies() == [b"a" * 32, b"b" * 32]
        assert buffer.waiter_count(b"b" * 32) == 2
        buffer.satisfy(b"b" * 32)
        assert buffer.missing_dependencies() == [b"a" * 32]
        assert buffer.waiter_count(b"b" * 32) == 0
