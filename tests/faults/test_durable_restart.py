"""Durable cold restarts under churn: the chaos layer must rebuild a
crashed gateway from its store (never silently regenerate genesis
state), recover as fast as the in-memory baseline, and stay
byte-deterministic."""

import pytest

from repro.core.biot import BIoTConfig, BIoTSystem
from repro.faults.plan import PlanBuilder
from repro.faults.report import credit_hash, node_state_hashes
from repro.faults.runner import ChaosRunner
from repro.faults.scenarios import run_scenario
from repro.storage.errors import StorageError


class TestChurnDurable:
    def test_matches_in_memory_churn_recovery(self):
        """Cold restarts from disk must not be a slower (or less
        convergent) recovery path than warm in-memory restarts: same
        convergence verdict, same anti-entropy effort."""
        durable = run_scenario("churn-durable", seed=7)
        memory = run_scenario("churn", seed=7)
        assert durable.converged, durable.notes
        assert memory.converged, memory.notes
        assert durable.sync_rounds_used == memory.sync_rounds_used
        assert durable.counters["faults_injected"] \
            == memory.counters["faults_injected"]

    def test_report_byte_deterministic(self):
        first = run_scenario("churn-durable", seed=19)
        second = run_scenario("churn-durable", seed=19)
        assert first.to_json() == second.to_json()

    def test_cold_restart_without_store_refused(self):
        """The pre-storage churn bug, now a hard error: a cold restart
        of a node with no durable store must fail loudly instead of
        silently regenerating genesis state."""
        plan = (PlanBuilder("cold-no-store")
                .crash(5.0, "gateway-0", restart_at=8.0,
                       cold_restart=True)
                .build())
        runner = ChaosRunner(BIoTConfig(gateway_count=2, device_count=2))
        with pytest.raises(StorageError, match="no durable store"):
            runner.run(plan, seed=7)


class TestColdRestoreFromDeployment:
    def test_restore_rebuilds_precrash_state_from_disk(self, tmp_path):
        """With its radio down (no resync possible), a cold-restored
        gateway must reconstruct its exact pre-crash state from the
        store alone — proof the bytes on disk, not the network, carry
        the recovery."""
        config = BIoTConfig(gateway_count=2, device_count=2, seed=7,
                            storage_backend="file",
                            storage_dir=str(tmp_path))
        system = BIoTSystem.build(config)
        system.initialize()
        system.start_devices()
        system.run_for(20.0)

        gateway = system.gateways[0]
        system.network.take_down(gateway.address)
        now = system.scheduler.clock.now()
        before = node_state_hashes(gateway)
        credit_before = credit_hash(gateway.consensus.registry, now=now)

        replayed = gateway.cold_restore()
        assert replayed > 0
        assert node_state_hashes(gateway) == before
        assert credit_hash(gateway.consensus.registry, now=now) \
            == credit_before

    def test_fresh_build_refuses_populated_storage_dir(self, tmp_path):
        config = BIoTConfig(gateway_count=1, device_count=1, seed=7,
                            storage_backend="file",
                            storage_dir=str(tmp_path))
        BIoTSystem.build(config)
        with pytest.raises(StorageError, match="empty storage_dir"):
            BIoTSystem.build(config)

    def test_durable_backend_requires_dir(self):
        with pytest.raises(StorageError, match="storage_dir"):
            BIoTSystem.build(BIoTConfig(storage_backend="sqlite"))

    def test_unknown_backend_refused(self):
        with pytest.raises(ValueError, match="unknown storage backend"):
            BIoTConfig(storage_backend="papyrus")
