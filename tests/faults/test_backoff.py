"""Property tests for repro.faults.backoff: the retry clock's
invariants hold for every policy, not just the default one."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.backoff import BackoffPolicy, DEFAULT_BACKOFF


def policies():
    """Valid policy space: max_delay derived as a multiple of base."""
    return st.builds(
        lambda base, factor, mult, jitter, attempts: BackoffPolicy(
            base_delay=base,
            multiplier=mult,
            max_delay=base * factor,
            jitter=jitter,
            max_attempts=attempts,
        ),
        st.floats(min_value=1e-3, max_value=10.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=1.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=1.0, max_value=4.0,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.0, max_value=1.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=1, max_value=20),
    )


class TestNominalDelay:
    @given(policy=policies())
    def test_monotone_and_bounded(self, policy):
        previous = 0.0
        for attempt in range(1, policy.max_attempts + 1):
            nominal = policy.nominal_delay(attempt)
            assert nominal >= previous
            assert nominal <= policy.max_delay
            previous = nominal

    @given(policy=policies())
    def test_first_attempt_is_base_delay(self, policy):
        assert policy.nominal_delay(1) == pytest.approx(policy.base_delay)

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError):
            DEFAULT_BACKOFF.nominal_delay(0)


class TestJitter:
    @given(policy=policies(), seed=st.integers(min_value=0, max_value=2**32),
           attempt=st.integers(min_value=1, max_value=20))
    def test_jittered_delay_within_cap(self, policy, seed, attempt):
        attempt = min(attempt, policy.max_attempts)
        nominal = policy.nominal_delay(attempt)
        delay = policy.delay(attempt, random.Random(seed))
        assert nominal <= delay <= nominal * (1.0 + policy.jitter) + 1e-12

    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_zero_jitter_consumes_no_randomness(self, seed):
        policy = BackoffPolicy(jitter=0.0)
        rng = random.Random(seed)
        before = rng.getstate()
        delay = policy.delay(3, rng)
        assert rng.getstate() == before
        assert delay == policy.nominal_delay(3)

    @given(seed=st.integers(min_value=0, max_value=2**32))
    def test_jitter_consumes_exactly_one_draw(self, seed):
        policy = BackoffPolicy(jitter=0.5)
        rng_a = random.Random(seed)
        rng_b = random.Random(seed)
        policy.delay(1, rng_a)
        rng_b.random()
        assert rng_a.getstate() == rng_b.getstate()


class TestSchedule:
    @given(policy=policies(), seed=st.integers(min_value=0, max_value=2**32))
    def test_schedule_stops_at_max_attempts(self, policy, seed):
        schedule = policy.schedule(random.Random(seed))
        assert len(schedule) == policy.max_attempts

    @given(policy=policies(), seed=st.integers(min_value=0, max_value=2**32))
    def test_same_seed_reproduces_schedule(self, policy, seed):
        first = policy.schedule(random.Random(seed))
        second = policy.schedule(random.Random(seed))
        assert first == second

    @given(policy=policies(), seed=st.integers(min_value=0, max_value=2**32))
    def test_schedule_entries_all_bounded(self, policy, seed):
        for delay in policy.schedule(random.Random(seed)):
            assert delay <= policy.max_delay * (1.0 + policy.jitter) + 1e-12

    @given(policy=policies())
    def test_exhaustion_boundary(self, policy):
        assert not policy.exhausted(policy.max_attempts - 1) \
            or policy.max_attempts == 1
        assert policy.exhausted(policy.max_attempts)
        assert policy.exhausted(policy.max_attempts + 1)


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"base_delay": 0.0},
        {"base_delay": -1.0},
        {"multiplier": 0.5},
        {"max_delay": 0.1, "base_delay": 0.5},
        {"jitter": -0.1},
        {"jitter": 1.5},
        {"max_attempts": 0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_default_policy_is_sane(self):
        assert DEFAULT_BACKOFF.max_attempts == 5
        assert DEFAULT_BACKOFF.nominal_delay(5) == DEFAULT_BACKOFF.max_delay
