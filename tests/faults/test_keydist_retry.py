"""Tests for the key-distribution retry/backoff loop: the Fig. 4
handshake must complete across lossy links, crashed devices, and lost
or duplicated protocol messages — without ever tripping its own replay
defences."""

import pytest

from repro.core.biot import BIoTConfig, BIoTSystem
from repro.faults.backoff import BackoffPolicy
from repro.network.transport import LatencyModel, LinkOverlay


def build_system(*, seed=11, retry_policy=None, link=None):
    """One gateway, two devices, authorised and settled (no keydist)."""
    system = BIoTSystem.build(BIoTConfig(
        device_count=2, gateway_count=1, seed=seed,
        initial_difficulty=6, retry_policy=retry_policy,
    ))
    system.manager.register_gateways(
        [keys.public for keys in system.gateway_keys.values()])
    system.manager.authorize_devices(
        [keys.public for keys in system.device_keys.values()])
    if link is not None:
        for device in system.devices:
            system.network.set_link("manager", device.address, link)
    system.run_for(2.0)
    return system


def distribute(system, device):
    system.manager.distribute_key(device.address, device.keypair.public)


class TestHappyPath:
    def test_single_attempt_no_retries(self):
        system = build_system()
        device = system.devices[0]
        distribute(system, device)
        system.run_for(5.0)
        assert device.key_agent.key_for("sensitive") is not None
        assert system.manager.keydist_retries == 0
        assert system.manager._keydist_active == {}
        assert system.manager._keydist_m3 == {}

    def test_in_flight_handshake_not_duplicated(self):
        system = build_system(link=LatencyModel(base_latency=1.0))
        device = system.devices[0]
        distribute(system, device)
        distribute(system, device)  # second call while M1 is in flight
        system.run_for(10.0)
        assert system.manager.distributor.completed_distributions == 1


class TestM1Loss:
    def test_device_down_then_up_recovers(self):
        system = build_system()
        device = system.devices[0]
        system.network.take_down(device.address)
        distribute(system, device)  # M1 dropped at the dead radio
        system.run_for(1.0)
        system.network.bring_up(device.address)
        system.run_for(30.0)
        assert device.key_agent.key_for("sensitive") is not None
        assert system.manager.keydist_retries >= 1
        assert system.manager._keydist_active == {}

    def test_exhaustion_gives_up(self):
        policy = BackoffPolicy(base_delay=0.5, max_delay=1.0,
                               jitter=0.0, max_attempts=2)
        system = build_system(retry_policy=policy)
        device = system.devices[0]
        system.network.take_down(device.address)
        distribute(system, device)
        system.run_for(10.0)
        assert system.manager.keydist_exhausted >= 1
        assert system.manager._keydist_active == {}
        # A later (post-repair) distribution starts fresh and succeeds.
        system.network.bring_up(device.address)
        distribute(system, device)
        system.run_for(10.0)
        assert device.key_agent.key_for("sensitive") is not None


class TestM3Loss:
    def test_m3_ack_loss_triggers_retransmit_and_reack(self):
        # Slow symmetric link so every protocol leg lands at a known
        # time; backoff larger than the RTT so retransmits are real.
        policy = BackoffPolicy(base_delay=3.0, max_delay=24.0,
                               jitter=0.25, max_attempts=5)
        system = build_system(retry_policy=policy,
                              link=LatencyModel(base_latency=1.0))
        device = system.devices[0]
        distribute(system, device)  # M1@1, M2@2, M3@3, ack@4
        system.run_for(3.5)
        assert device.key_agent.key_for("sensitive") is not None
        # Crash the manager while the ack is in flight: purged.
        system.network.take_down("manager")
        system.network.bring_up("manager")
        assert system.manager._keydist_m3  # still waiting for the ack
        system.run_for(30.0)
        # M3 was retransmitted; the device re-acked from its dedup set
        # without reinstalling, and the manager settled the session.
        assert system.manager.keydist_retries >= 1
        assert system.manager._keydist_m3 == {}
        assert system.manager._keydist_active == {}
        assert len(device._keydist_acked) == 1


class TestDuplication:
    def test_duplicated_m1_does_not_break_handshake(self):
        system = build_system()
        device = system.devices[0]
        token = system.network.add_overlay(
            "manager", device.address,
            LinkOverlay(duplicate_probability=0.9))
        distribute(system, device)
        system.run_for(30.0)
        system.network.remove_overlay(token)
        # The duplicate M1 trips the nonce_a replay defence and is
        # ignored; the handshake still completes exactly once.
        assert device.key_agent.key_for("sensitive") is not None
        assert system.manager.distributor.completed_distributions == 1
        assert system.manager._keydist_active == {}


class TestLossyLink:
    @pytest.mark.parametrize("seed", [3, 11, 29])
    def test_handshake_completes_under_30_percent_loss(self, seed):
        system = build_system(
            seed=seed,
            link=LatencyModel(base_latency=0.05, loss_rate=0.3))
        device = system.devices[0]
        distribute(system, device)
        system.run_for(120.0)
        assert device.key_agent.key_for("sensitive") is not None, \
            f"handshake failed under 30% loss with seed {seed}"
        assert system.manager._keydist_active == {}
