"""Null-path equivalence: a chaos run with an empty plan must be
bit-identical to a plain (harness-free) run of the same workload, with
zero sync rounds and zero recovery traffic.  This pins down that the
chaos harness itself perturbs nothing."""

from dataclasses import replace

from repro.core.biot import BIoTConfig, BIoTSystem
from repro.crypto import rand
from repro.faults.plan import FaultPlan
from repro.faults.report import node_state_hashes
from repro.faults.runner import ChaosRunner, ChaosSettings

CONFIG = BIoTConfig(gateway_count=2, device_count=3)
SETTINGS = ChaosSettings(report_seconds=30.0, drain_seconds=10.0)
SEED = 13
NAME = "null"


def plain_run():
    """The same workload the runner executes, minus the harness."""
    with rand.deterministic(f"chaos:{NAME}:{SEED}".encode()):
        system = BIoTSystem.build(replace(CONFIG, seed=SEED))
        system.initialize()
        system.start_devices()
        system.run_for(max(SETTINGS.report_seconds, 1.0))
        for device in system.devices:
            device.stop()
        system.network.restore_all()
        system.run_for(SETTINGS.drain_seconds)
        return system


class TestNullPlanEquivalence:
    def test_empty_plan_matches_plain_run_bit_for_bit(self):
        report = ChaosRunner(CONFIG, settings=SETTINGS).run(
            FaultPlan(), seed=SEED, scenario=NAME)
        system = plain_run()
        plain_hashes = {node.address: node_state_hashes(node)
                        for node in system.full_nodes}
        assert report.node_hashes == plain_hashes
        assert report.converged

    def test_empty_plan_needs_no_sync_rounds(self):
        report = ChaosRunner(CONFIG, settings=SETTINGS).run(
            FaultPlan(), seed=SEED, scenario=NAME)
        assert report.sync_rounds_used == 0

    def test_empty_plan_triggers_no_recovery_traffic(self):
        report = ChaosRunner(CONFIG, settings=SETTINGS).run(
            FaultPlan(), seed=SEED, scenario=NAME)
        counters = report.counters
        assert counters["faults_injected"] == 0
        assert counters["faults_healed"] == 0
        assert counters["messages_purged"] == 0
        assert counters["messages_duplicated"] == 0
        assert counters["keydist_retries"] == 0
        assert counters["keydist_exhausted"] == 0
        assert counters["parent_requests_sent"] == 0
        assert counters["parent_fetch_exhausted"] == 0
        assert counters["sync_requests_served"] == 0

    def test_empty_plan_run_is_reproducible(self):
        runner = ChaosRunner(CONFIG, settings=SETTINGS)
        first = runner.run(FaultPlan(), seed=SEED, scenario=NAME)
        second = runner.run(FaultPlan(), seed=SEED, scenario=NAME)
        assert first.to_json() == second.to_json()
