"""Convergence tests for the canned chaos campaigns: every catalog
scenario must heal back to identical replica state under several fixed
seeds, and the emitted report must be byte-deterministic."""

import pytest

from repro.faults.scenarios import SCENARIOS, get_scenario, run_scenario

CAMPAIGNS = ["partition-heal", "churn", "churn-durable", "lossy-burst",
             "skewed-clock"]
SEEDS = [7, 19, 42]


class TestCatalog:
    def test_catalog_names(self):
        assert set(SCENARIOS) == {"smoke"} | set(CAMPAIGNS)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            get_scenario("not-a-scenario")


class TestConvergence:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", CAMPAIGNS)
    def test_campaign_converges_by_hash(self, name, seed):
        report = run_scenario(name, seed=seed)
        assert report.converged, (
            f"{name} seed {seed} diverged: {report.notes} "
            f"hashes={report.node_hashes}")
        # Convergence means literal hash agreement, not just the flag.
        reference = report.reference_hashes
        for address, hashes in report.node_hashes.items():
            assert hashes == reference, address
        # The campaign must actually have fired its faults.
        assert report.counters["faults_injected"] >= 1
        assert report.counters["submissions_accepted"] > 0

    @pytest.mark.parametrize("name", CAMPAIGNS)
    def test_recovery_machinery_engaged(self, name):
        """Campaigns with outage windows must exercise recovery paths,
        not merely survive by luck of timing."""
        report = run_scenario(name, seed=7)
        counters = report.counters
        if name in ("partition-heal", "churn", "churn-durable"):
            # Messages died at downed radios / cut links, and post-heal
            # anti-entropy repaired the holes.
            assert (counters["messages_dropped"] > 0
                    or counters["messages_purged"] > 0)
            assert counters["sync_requests_served"] > 0
        if name == "lossy-burst":
            assert counters["messages_dropped"] > 0
            assert counters["messages_duplicated"] > 0


class TestDeterminism:
    def test_same_seed_byte_identical_report(self):
        first = run_scenario("smoke", seed=7)
        second = run_scenario("smoke", seed=7)
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self):
        first = run_scenario("smoke", seed=7)
        second = run_scenario("smoke", seed=8)
        assert first.to_json() != second.to_json()
