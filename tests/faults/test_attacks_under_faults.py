"""Attacks under degraded networks: the credit mechanism (Section
VI-C) must keep punishing misbehaviour while a fault plan partitions
and heals the fabric around it — faults are not an amnesty."""

import random

import pytest

from repro.attacks.double_spend import DoubleSpendAttacker
from repro.attacks.lazy_tips import LazyLightNode
from repro.core.biot import BIoTConfig, BIoTSystem
from repro.crypto.keys import KeyPair
from repro.devices.sensors import TemperatureSensor
from repro.faults.injector import FaultInjector
from repro.faults.plan import PlanBuilder
from repro.faults.report import node_state_hashes


def build_with_lazy_node(*, seed=51, report_interval=2.0):
    system = BIoTSystem.build(BIoTConfig(
        device_count=2, gateway_count=1, seed=seed,
        initial_difficulty=6, report_interval=report_interval,
    ))
    lazy_keys = KeyPair.generate(seed=b"lazy-node")
    lazy = LazyLightNode(
        "lazy-device", lazy_keys,
        gateway="gateway-0",
        manager=system.manager.acl.manager,
        sensor=TemperatureSensor(seed=99),
        report_interval=report_interval,
        rng=random.Random(77),
        fixed_branch=system.manager.tangle.genesis.tx_hash,
    )
    system.network.attach(lazy)
    system.manager.authorize_devices(
        [k.public for k in system.device_keys.values()] + [lazy_keys.public]
    )
    system.run_for(2.0)
    return system, lazy


def build_with_double_spender(*, seed=61):
    system = BIoTSystem.build(BIoTConfig(
        device_count=2, gateway_count=2, seed=seed,
        initial_difficulty=6, report_interval=2.0,
    ))
    attacker_keys = KeyPair.generate(seed=b"double-spender")
    recipients = [k.public for k in system.device_keys.values()][:2]
    attacker = DoubleSpendAttacker(
        "attacker", attacker_keys,
        gateways=["gateway-0", "gateway-1"],
        recipients=recipients,
        amount=1,
        attack_interval=8.0,
        rng=random.Random(13),
    )
    system.network.attach(attacker)
    system.manager.authorize_devices(
        [k.public for k in system.device_keys.values()]
        + [attacker_keys.public]
    )
    for node in system.full_nodes:
        node.ledger.credit(attacker_keys.node_id, 100)
    system.run_for(2.0)
    return system, attacker


def converge(system, rounds=3, settle=5.0):
    system.network.restore_all()
    for _ in range(rounds):
        for node in system.full_nodes:
            node.resync_with_peers()
        system.run_for(settle)
        hashes = [node_state_hashes(node) for node in system.full_nodes]
        if all(h == hashes[0] for h in hashes[1:]):
            return True
    return False


class TestLazyTipsUnderPartition:
    def test_lazy_node_punished_while_backbone_partitioned(self):
        system, lazy = build_with_lazy_node()
        injector = FaultInjector(system.network,
                                 full_nodes=system.full_nodes)
        # Cut the gateway off the manager for most of the attack
        # window; the gateway keeps scoring its local traffic.
        injector.apply(PlanBuilder("lazy-partition")
                       .partition(10.0, 60.0, ("gateway-0",), ("manager",))
                       .build())
        lazy.start()
        system.run_for(90.0)
        gateway = system.gateways[0]
        # CrN penalties fired mid-partition, same as fault-free.
        assert gateway.consensus.lazy_detections > 0
        assert (gateway.consensus.registry.malicious_count(
            lazy.keypair.node_id) > 0)
        assert max(lazy.stats.assigned_difficulties) > 6

    def test_honest_devices_survive_partition_and_attack(self):
        system, lazy = build_with_lazy_node()
        injector = FaultInjector(system.network,
                                 full_nodes=system.full_nodes)
        injector.apply(PlanBuilder("lazy-partition")
                       .partition(10.0, 40.0, ("gateway-0",), ("manager",))
                       .build())
        lazy.start()
        honest = system.devices[0]
        honest.start()
        system.run_for(90.0)
        honest.stop()
        lazy.stop()
        gateway = system.gateways[0]
        assert honest.stats.submissions_accepted > 0
        assert (gateway.consensus.registry.malicious_count(
            honest.keypair.node_id) == 0)
        # After healing, the replicas still reconcile.
        assert converge(system)


class TestDoubleSpendUnderPartition:
    def test_conflicts_detected_and_punished_across_partition(self):
        system, attacker = build_with_double_spender()
        injector = FaultInjector(system.network,
                                 full_nodes=system.full_nodes)
        # Split the two victim gateways so each sees only one arm of
        # the double-spend — the strongest version of the attack.
        injector.apply(PlanBuilder("ds-partition")
                       .partition(5.0, 45.0,
                                  ("gateway-0", "manager"),
                                  ("gateway-1",))
                       .build())
        attacker.start()
        system.run_for(60.0)
        attacker.stop()
        assert attacker.stats.rounds_started >= 2
        total_conflicts = sum(
            len(node.ledger.conflicts) for node in system.full_nodes)
        punished = [
            node.consensus.registry.malicious_count(attacker.keypair.node_id)
            for node in system.full_nodes
        ]
        assert total_conflicts > 0
        assert any(count > 0 for count in punished)
        # Balance never goes negative on any replica, even mid-heal.
        for node in system.full_nodes:
            assert node.ledger.balance(attacker.keypair.node_id) >= 0

    def test_replicas_reconcile_after_partition_heals(self):
        system, attacker = build_with_double_spender()
        injector = FaultInjector(system.network,
                                 full_nodes=system.full_nodes)
        injector.apply(PlanBuilder("ds-partition")
                       .partition(5.0, 45.0,
                                  ("gateway-0", "manager"),
                                  ("gateway-1",))
                       .build())
        attacker.start()
        system.run_for(60.0)
        attacker.stop()
        system.run_for(5.0)
        assert converge(system)
        # Post-heal, every replica agrees on the winner per sequence.
        reference = system.manager.ledger
        for node in system.gateways:
            for sequence in range(attacker.stats.rounds_started):
                assert (node.ledger.spent_tx(attacker.keypair.node_id,
                                             sequence)
                        == reference.spent_tx(attacker.keypair.node_id,
                                              sequence))
