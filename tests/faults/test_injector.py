"""Tests for repro.faults.injector: plans execute on the event loop at
the right times, heal cleanly, and trigger post-heal resync."""

import random

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, PlanBuilder
from repro.network.network import Network, NetworkNode
from repro.network.simulator import EventScheduler
from repro.network.transport import LatencyModel


class Recorder(NetworkNode):
    def __init__(self, address):
        super().__init__(address)
        self.inbox = []
        self.resyncs = 0

    def handle_message(self, message):
        self.inbox.append(message)

    def resync_with_peers(self):
        self.resyncs += 1
        return 0


@pytest.fixture()
def fabric():
    scheduler = EventScheduler()
    network = Network(scheduler, rng=random.Random(3))
    nodes = {name: Recorder(name) for name in ("a", "b", "c")}
    for node in nodes.values():
        network.attach(node)
    return scheduler, network, nodes


def pump(scheduler, network, sender, recipient, count=1):
    for _ in range(count):
        network.send(sender, recipient, "probe", {})


class TestLinkFaults:
    def test_cut_blocks_then_heal_restores(self, fabric):
        scheduler, network, nodes = fabric
        injector = FaultInjector(network)
        injector.apply(PlanBuilder().cut(1.0, "a", "b", heal_at=3.0).build())

        scheduler.run_until(2.0)
        pump(scheduler, network, "a", "b")
        scheduler.run_until(2.5)
        assert nodes["b"].inbox == []  # cut window: dropped

        scheduler.run_until(3.5)
        pump(scheduler, network, "a", "b")
        scheduler.run_until(4.5)
        assert len(nodes["b"].inbox) == 1  # healed

    def test_partition_cuts_every_cross_link_only(self, fabric):
        scheduler, network, nodes = fabric
        injector = FaultInjector(network)
        injector.apply(
            PlanBuilder().partition(1.0, 5.0, ("a",), ("b", "c")).build())
        scheduler.run_until(2.0)
        pump(scheduler, network, "a", "b")
        pump(scheduler, network, "a", "c")
        pump(scheduler, network, "b", "c")  # intra-group survives
        scheduler.run_until(3.0)
        assert nodes["b"].inbox == []
        assert [m.sender for m in nodes["c"].inbox] == ["b"]

    def test_offsets_are_relative_to_apply_time(self, fabric):
        scheduler, network, nodes = fabric
        scheduler.run_until(10.0)
        injector = FaultInjector(network)
        injector.apply(PlanBuilder().cut(1.0, "a", "b").build())
        pump(scheduler, network, "a", "b")
        scheduler.run_until(10.5)
        assert len(nodes["b"].inbox) == 1  # before 11.0: link still up
        scheduler.run_until(11.5)
        pump(scheduler, network, "a", "b")
        scheduler.run_until(12.5)
        assert len(nodes["b"].inbox) == 1  # after 11.0: cut


class TestCrashFaults:
    def test_crash_restart_and_resync(self, fabric):
        scheduler, network, nodes = fabric
        injector = FaultInjector(
            network, full_nodes=[nodes["a"], nodes["b"]], resync_delay=0.5)
        injector.apply(
            PlanBuilder().crash(1.0, "a", restart_at=2.0).build())
        scheduler.run_until(1.5)
        assert network.is_down("a")
        scheduler.run_until(3.0)
        assert not network.is_down("a")
        assert nodes["a"].resyncs == 1  # only the restarted node resyncs
        assert nodes["b"].resyncs == 0

    def test_restart_without_resync(self, fabric):
        scheduler, network, nodes = fabric
        injector = FaultInjector(network, full_nodes=[nodes["a"]])
        injector.apply(PlanBuilder().crash(
            1.0, "a", restart_at=2.0, resync_on_restart=False).build())
        scheduler.run_until(5.0)
        assert nodes["a"].resyncs == 0

    def test_heal_resyncs_survivors_not_downed(self, fabric):
        scheduler, network, nodes = fabric
        injector = FaultInjector(
            network, full_nodes=[nodes["a"], nodes["b"]], resync_delay=0.1)
        injector.apply(PlanBuilder()
                       .cut(1.0, "a", "c", heal_at=2.0)
                       .crash(0.5, "b")  # never restarts
                       .build())
        scheduler.run_until(3.0)
        assert nodes["a"].resyncs == 1
        assert nodes["b"].resyncs == 0  # down at resync time: skipped


class TestBurstFaults:
    def test_loss_burst_applies_and_lifts(self, fabric):
        scheduler, network, nodes = fabric
        injector = FaultInjector(network)
        injector.apply(
            PlanBuilder().loss(1.0, 4.0, 0.99, a="a", b="b").build())
        scheduler.run_until(2.0)
        pump(scheduler, network, "a", "b", count=20)
        scheduler.run_until(3.0)
        assert len(nodes["b"].inbox) < 5  # ~99% loss inside the window
        scheduler.run_until(5.0)
        before = len(nodes["b"].inbox)
        pump(scheduler, network, "a", "b", count=20)
        scheduler.run_until(6.0)
        assert len(nodes["b"].inbox) == before + 20  # overlay lifted

    def test_latency_burst_defers_delivery(self, fabric):
        scheduler, network, nodes = fabric
        injector = FaultInjector(network)
        injector.apply(
            PlanBuilder().latency(1.0, 5.0, 2.0, a="a", b="b").build())
        scheduler.run_until(2.0)
        pump(scheduler, network, "a", "b")
        scheduler.run_until(3.0)
        assert nodes["b"].inbox == []  # still in the extra-latency window
        scheduler.run_until(4.5)
        assert len(nodes["b"].inbox) == 1

    def test_duplication_burst_doubles_messages(self, fabric):
        scheduler, network, nodes = fabric
        injector = FaultInjector(network)
        injector.apply(
            PlanBuilder().duplicate(1.0, 4.0, 0.9, a="a", b="b").build())
        scheduler.run_until(2.0)
        pump(scheduler, network, "a", "b", count=10)
        scheduler.run_until(3.5)
        assert len(nodes["b"].inbox) > 10
        assert network.messages_duplicated > 0


class TestClockSkew:
    def test_skew_applied_and_reset(self, fabric):
        scheduler, network, nodes = fabric
        injector = FaultInjector(network)
        injector.apply(
            PlanBuilder().skew(1.0, "b", 2.5, until=3.0).build())
        scheduler.run_until(2.0)
        assert nodes["b"].clock_offset == 2.5
        scheduler.run_until(3.5)
        assert nodes["b"].clock_offset == 0.0


class TestAuditAndMetrics:
    def test_injection_log_records_both_phases(self, fabric):
        scheduler, network, nodes = fabric
        injector = FaultInjector(network)
        injector.apply(PlanBuilder()
                       .cut(1.0, "a", "b", heal_at=2.0)
                       .skew(1.5, "c", 1.0, until=2.5)
                       .build())
        scheduler.run_until(5.0)
        actions = [action for _, action, _ in injector.injection_log]
        assert actions == ["inject:link_cut", "inject:clock_skew",
                           "heal:link_cut", "heal:clock_skew"]
        times = [t for t, _, _ in injector.injection_log]
        assert times == sorted(times)

    def test_unknown_event_type_rejected(self, fabric):
        _, network, _ = fabric
        injector = FaultInjector(network)

        class Bogus:
            at = 0.0
            kind = "bogus"

        with pytest.raises(TypeError):
            injector.apply(FaultPlan(events=(Bogus(),)))
