"""Tests for repro.faults.plan: the campaign DSL validates its inputs
and renders a canonical, ordered description."""

import pytest

from repro.faults.plan import (
    ClockSkewFault,
    CrashFault,
    DuplicationBurst,
    FaultPlan,
    LatencyBurst,
    LinkCut,
    LossBurst,
    PartitionFault,
    PlanBuilder,
)


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            LinkCut(at=-1.0, a="a", b="b")

    def test_cut_needs_distinct_endpoints(self):
        with pytest.raises(ValueError):
            LinkCut(at=0.0, a="a", b="a")
        with pytest.raises(ValueError):
            LinkCut(at=0.0, a="", b="b")

    def test_heal_must_follow_injection(self):
        with pytest.raises(ValueError):
            LinkCut(at=5.0, a="a", b="b", heal_at=5.0)
        with pytest.raises(ValueError):
            CrashFault(at=5.0, address="a", restart_at=2.0)

    def test_partition_needs_two_disjoint_groups(self):
        with pytest.raises(ValueError):
            PartitionFault(at=0.0, groups=(("a",),))
        with pytest.raises(ValueError):
            PartitionFault(at=0.0, groups=(("a",), ()))
        with pytest.raises(ValueError):
            PartitionFault(at=0.0, groups=(("a", "b"), ("b",)))

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            LossBurst(at=0.0, until=1.0, rate=0.0)
        with pytest.raises(ValueError):
            LossBurst(at=0.0, until=1.0, rate=1.0)

    def test_duplication_probability_bounds(self):
        with pytest.raises(ValueError):
            DuplicationBurst(at=0.0, until=1.0, probability=1.0)

    def test_latency_burst_must_add_something(self):
        with pytest.raises(ValueError):
            LatencyBurst(at=0.0, until=1.0, extra_latency=0.0,
                         extra_jitter=0.0)

    def test_skew_must_be_nonzero(self):
        with pytest.raises(ValueError):
            ClockSkewFault(at=0.0, address="a", offset=0.0)


class TestPartitionCrossLinks:
    def test_all_cross_pairs_no_intra_pairs(self):
        fault = PartitionFault(
            at=0.0, groups=(("a", "b"), ("c",), ("d",)))
        links = fault.cross_links()
        assert ("a", "c") in links and ("b", "c") in links
        assert ("a", "d") in links and ("c", "d") in links
        assert ("a", "b") not in links and ("b", "a") not in links
        assert len(links) == 2 * 1 + 2 * 1 + 1  # ab x c, ab x d, c x d

    def test_cross_links_deterministic(self):
        fault = PartitionFault(at=0.0, groups=(("a", "b"), ("c", "d")))
        assert fault.cross_links() == fault.cross_links()


class TestFaultPlan:
    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=(
            LinkCut(at=9.0, a="a", b="b"),
            CrashFault(at=1.0, address="a"),
            LossBurst(at=4.0, until=5.0, rate=0.5),
        ))
        assert [event.at for event in plan.events] == [1.0, 4.0, 9.0]

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.last_event_time() == 0.0
        assert plan.describe() == []

    def test_last_event_time_includes_heals(self):
        plan = FaultPlan(events=(
            LinkCut(at=2.0, a="a", b="b", heal_at=30.0),
            CrashFault(at=10.0, address="a"),
        ))
        assert plan.last_event_time() == 30.0

    def test_describe_is_stable_plain_data(self):
        plan = (PlanBuilder("x")
                .partition(10.0, 25.0, ("g0",), ("g1", "m"))
                .loss(30.0, 36.0, 0.3)
                .build())
        first = plan.describe()
        assert first == plan.describe()
        assert first[0]["kind"] == "partition"
        assert first[0]["groups"] == [["g0"], ["g1", "m"]]
        assert first[1] == {"kind": "loss_burst", "at": 30.0, "until": 36.0,
                            "a": "*", "b": "*", "rate": 0.3}


class TestPlanBuilder:
    def test_builder_produces_every_kind(self):
        plan = (PlanBuilder("all")
                .cut(1.0, "a", "b", heal_at=2.0)
                .partition(3.0, 4.0, ("a",), ("b",))
                .crash(5.0, "a", restart_at=6.0)
                .loss(7.0, 8.0, 0.5)
                .latency(9.0, 10.0, 0.5, extra_jitter=0.1)
                .duplicate(11.0, 12.0, 0.5)
                .skew(13.0, "a", 1.0, until=14.0)
                .build())
        kinds = [event.kind for event in plan.events]
        assert kinds == ["link_cut", "partition", "crash", "loss_burst",
                        "latency_burst", "duplication_burst", "clock_skew"]
        assert plan.name == "all"
        assert plan.last_event_time() == 14.0
