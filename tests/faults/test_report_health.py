"""Convergence-report observability: per-node health digests and the
trace-derived recovery latency added to every chaos report."""

import json

from repro.faults.scenarios import run_scenario


class TestReportHealthFields:
    def test_report_carries_health_and_recovery(self):
        report = run_scenario("smoke", seed=7)
        assert report.recovery_seconds >= 0.0
        assert set(report.node_health) == set(report.node_hashes)
        for digest in report.node_health.values():
            for key in ("tangle_size", "tips", "solidification_depth",
                        "solidification_peak", "pending_parent_requests",
                        "gossip_seen", "gossip_relays"):
                assert key in digest, key
            assert digest["tangle_size"] > 1
            assert digest["solidification_peak"] >= \
                digest["solidification_depth"]
            if "verify_cache" in digest:
                cache = digest["verify_cache"]
                assert 0.0 <= cache["hit_rate"] <= 1.0
                assert cache["hits"] + cache["misses"] > 0

    def test_health_fields_serialise_and_stay_deterministic(self):
        first = run_scenario("smoke", seed=7).to_json()
        second = run_scenario("smoke", seed=7).to_json()
        assert first == second
        decoded = json.loads(first)
        assert "node_health" in decoded
        assert "recovery_seconds" in decoded

    def test_converged_run_recovers_in_zero_sync_time(self):
        """The null plan converges before any sync round fires, so its
        trace-derived recovery latency is exactly zero."""
        from repro.faults.plan import FaultPlan
        from repro.faults.runner import ChaosRunner, ChaosSettings
        from repro.core.biot import BIoTConfig

        runner = ChaosRunner(
            BIoTConfig(device_count=2, gateway_count=1, seed=11,
                       initial_difficulty=6,
                       sensor_cycle=("temperature", "vibration")),
            settings=ChaosSettings(report_seconds=10.0, drain_seconds=5.0),
        )
        report = runner.run(FaultPlan(name="null", events=()), seed=11)
        assert report.converged
        assert report.sync_rounds_used == 0
        assert report.recovery_seconds == 0.0
        assert report.node_health
