"""Hypothesis properties of the canonical encoding and the hash chain:
round-trips are bit-stable, key order never matters, and any single-byte
corruption of a log or snapshot is detected and refused at load."""

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.checkpoint import EpochSnapshot
from repro.storage.errors import StorageCorruptionError
from repro.storage.store import (
    GENESIS_PREV_HASH,
    FileStore,
    LogRecord,
    canonical_json,
)

json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-2 ** 53, max_value=2 ** 53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(st.text(max_size=10), children,
                                        max_size=4)),
    max_leaves=12,
)


class TestCanonicalJson:
    @given(json_values)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_is_bit_stable(self, value):
        encoded = canonical_json(value)
        assert canonical_json(json.loads(encoded)) == encoded

    @given(st.dictionaries(st.text(max_size=10), json_values, max_size=8),
           st.randoms())
    @settings(max_examples=100, deadline=None)
    def test_key_order_is_irrelevant(self, mapping, rnd):
        items = list(mapping.items())
        rnd.shuffle(items)
        assert canonical_json(dict(items)) == canonical_json(mapping)

    @given(json_values)
    @settings(max_examples=100, deadline=None)
    def test_record_hash_covers_data(self, data):
        record = LogRecord.make(seq=0, kind="tx", data={"value": data},
                                prev_hash=GENESIS_PREV_HASH)
        verified = LogRecord.from_fields(json.loads(record.to_line()))
        assert verified == record


def _sample_log_bytes() -> bytes:
    with tempfile.TemporaryDirectory() as directory:
        path = os.path.join(directory, "log.jsonl")
        store = FileStore(path)
        store.append("genesis", {"tx": "ab" * 8})
        store.append("tx", {"tx": "cd" * 8, "arrival": 1.5})
        store.append("tx", {"tx": "ef" * 8, "arrival": 2.25})
        store.close()
        with open(path, "rb") as handle:
            return handle.read()


SAMPLE_LOG = _sample_log_bytes()


class TestSingleByteCorruption:
    @given(st.integers(min_value=0, max_value=len(SAMPLE_LOG) - 1),
           st.integers(min_value=1, max_value=255))
    @settings(max_examples=200, deadline=None)
    def test_any_flip_refused_at_load(self, offset, xor):
        corrupted = bytearray(SAMPLE_LOG)
        corrupted[offset] ^= xor
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "log.jsonl")
            with open(path, "wb") as handle:
                handle.write(bytes(corrupted))
            with pytest.raises(StorageCorruptionError):
                FileStore(path)

    def test_pristine_log_loads(self):
        with tempfile.TemporaryDirectory() as directory:
            path = os.path.join(directory, "log.jsonl")
            with open(path, "wb") as handle:
                handle.write(SAMPLE_LOG)
            store = FileStore(path)
            assert len(store) == 3
            store.close()


class TestSnapshotCorruption:
    def _epoch(self) -> EpochSnapshot:
        return EpochSnapshot(
            epoch=0, created_at=4.0, prev_hash=GENESIS_PREV_HASH,
            state={"tangle": "{}", "acl_state": {"authorized": []},
                   "ledger_state": {"balances": {}, "spent": {}},
                   "credit_state": {"now": 4.0, "nodes": {}},
                   "created_at": 4.0})

    def test_roundtrip(self):
        epoch = self._epoch()
        assert EpochSnapshot.from_data(epoch.to_data()) == epoch

    @given(st.sampled_from(["epoch", "created_at", "prev_hash", "hash"]))
    @settings(max_examples=20, deadline=None)
    def test_tampered_field_refused(self, field):
        data = self._epoch().to_data()
        if field in ("prev_hash", "hash"):
            data[field] = "f" * 64
        else:
            data[field] = data[field] + 1
        with pytest.raises(StorageCorruptionError):
            EpochSnapshot.from_data(data)

    def test_tampered_state_refused(self):
        data = self._epoch().to_data()
        data["state"]["credit_state"]["now"] = 5.0
        with pytest.raises(StorageCorruptionError):
            EpochSnapshot.from_data(data)

    def test_key_order_of_stored_data_is_irrelevant(self):
        data = self._epoch().to_data()
        reordered = dict(reversed(list(data.items())))
        assert EpochSnapshot.from_data(reordered) == self._epoch()
