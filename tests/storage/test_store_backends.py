"""Backend contract tests: the file and SQLite stores must behave like
the in-memory reference — same chain rules, same reopen semantics, same
refusal of tampered history."""

import json
import os
import sqlite3

import pytest

from repro.storage.errors import StorageCorruptionError, StorageError
from repro.storage.persistence import NodePersistence
from repro.storage.store import (
    GENESIS_PREV_HASH,
    FileStore,
    LogRecord,
    MemoryStore,
    SQLiteStore,
    canonical_json,
    open_store,
)

BACKENDS = ["memory", "file", "sqlite"]
DURABLE = ["file", "sqlite"]


def _open(backend, directory):
    return open_store(backend, str(directory), node="n0")


@pytest.mark.parametrize("backend", BACKENDS)
class TestStoreContract:
    def test_append_chains_records(self, backend, tmp_path):
        store = _open(backend, tmp_path)
        first = store.append("genesis", {"tx": "00"})
        second = store.append("tx", {"tx": "01", "arrival": 1.0})
        assert first.seq == 0
        assert first.prev_hash == GENESIS_PREV_HASH
        assert second.prev_hash == first.hash
        assert store.head_hash == second.hash
        assert store.next_seq == 2
        assert [r.seq for r in store.records()] == [0, 1]
        store.close()

    def test_records_from_start_seq(self, backend, tmp_path):
        store = _open(backend, tmp_path)
        for i in range(4):
            store.append("tx", {"i": i})
        assert [r.seq for r in store.records(start_seq=2)] == [2, 3]
        store.close()

    def test_prune_keeps_chain_head(self, backend, tmp_path):
        store = _open(backend, tmp_path)
        for i in range(5):
            store.append("tx", {"i": i})
        head = store.head_hash
        dropped = store.prune_before(3)
        assert dropped == 3
        assert [r.seq for r in store.records()] == [3, 4]
        assert store.head_hash == head
        tail = store.append("tx", {"i": 5})
        assert tail.prev_hash == head
        store.close()


@pytest.mark.parametrize("backend", DURABLE)
class TestDurableReopen:
    def test_reopen_continues_chain(self, backend, tmp_path):
        store = _open(backend, tmp_path)
        for i in range(3):
            store.append("tx", {"i": i})
        head, next_seq = store.head_hash, store.next_seq
        store.close()

        reopened = _open(backend, tmp_path)
        assert reopened.head_hash == head
        assert reopened.next_seq == next_seq
        assert [r.seq for r in reopened.records()] == [0, 1, 2]
        extra = reopened.append("tx", {"i": 3})
        assert extra.prev_hash == head
        reopened.close()

    def test_reopen_after_prune_accepts_anchor(self, backend, tmp_path):
        """A pruned log legitimately starts at seq > 0 whose prev_hash
        names a dropped record — that anchor must load cleanly."""
        store = _open(backend, tmp_path)
        for i in range(5):
            store.append("tx", {"i": i})
        store.prune_before(3)
        store.close()

        reopened = _open(backend, tmp_path)
        assert [r.seq for r in reopened.records()] == [3, 4]
        reopened.close()

    def test_empty_store_is_empty(self, backend, tmp_path):
        store = _open(backend, tmp_path)
        assert len(store) == 0
        assert store.head_hash == GENESIS_PREV_HASH
        store.close()


class TestOpenStoreFactory:
    def test_memory_needs_no_directory(self):
        assert isinstance(open_store("memory"), MemoryStore)

    def test_durable_without_directory_refused(self):
        with pytest.raises(StorageError):
            open_store("file")

    def test_unknown_backend_refused(self, tmp_path):
        with pytest.raises(StorageError):
            open_store("papyrus", str(tmp_path))

    def test_per_node_isolation(self, tmp_path):
        a = open_store("file", str(tmp_path), node="a")
        b = open_store("file", str(tmp_path), node="b")
        a.append("tx", {"i": 0})
        assert len(a) == 1 and len(b) == 0
        a.close()
        b.close()


class TestFileStoreCorruption:
    def _populate(self, tmp_path) -> str:
        path = os.path.join(str(tmp_path), "log.jsonl")
        store = FileStore(path)
        for i in range(3):
            store.append("tx", {"i": i})
        store.close()
        return path

    def test_noncanonical_framing_refused(self, tmp_path):
        """Same parsed value, same hash — only the strict framing check
        can catch a re-encoded (whitespace-padded) record."""
        path = self._populate(tmp_path)
        with open(path) as handle:
            lines = handle.read().splitlines()
        lines[1] = json.dumps(json.loads(lines[1]), sort_keys=True,
                              separators=(", ", ": "))
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(StorageCorruptionError, match="framing"):
            FileStore(path)

    def test_reordered_lines_refused(self, tmp_path):
        path = self._populate(tmp_path)
        with open(path) as handle:
            lines = handle.read().splitlines()
        lines[0], lines[1] = lines[1], lines[0]
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(StorageCorruptionError):
            FileStore(path)

    def test_deleted_line_refused(self, tmp_path):
        path = self._populate(tmp_path)
        with open(path) as handle:
            lines = handle.read().splitlines()
        del lines[1]
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(StorageCorruptionError):
            FileStore(path)

    def test_bad_seq_zero_anchor_refused(self, tmp_path):
        path = os.path.join(str(tmp_path), "log.jsonl")
        rogue = LogRecord.make(seq=0, kind="tx", data={},
                               prev_hash="1" * 64)
        with open(path, "w") as handle:
            handle.write(rogue.to_line() + "\n")
        with pytest.raises(StorageCorruptionError, match="anchor"):
            FileStore(path)

    def test_non_utf8_refused(self, tmp_path):
        path = os.path.join(str(tmp_path), "log.jsonl")
        with open(path, "wb") as handle:
            handle.write(b"\xff\xfe broken")
        with pytest.raises(StorageCorruptionError):
            FileStore(path)


class TestSQLiteCorruption:
    def test_tampered_row_refused(self, tmp_path):
        path = os.path.join(str(tmp_path), "store.db")
        store = SQLiteStore(path)
        store.append("tx", {"i": 0})
        store.append("tx", {"i": 1})
        store.close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE log SET data = ? WHERE seq = 0",
                     (canonical_json({"i": 99}),))
        conn.commit()
        conn.close()
        with pytest.raises(StorageCorruptionError):
            SQLiteStore(path)

    def test_garbage_file_refused(self, tmp_path):
        path = os.path.join(str(tmp_path), "store.db")
        with open(path, "wb") as handle:
            handle.write(b"this is not a database" * 100)
        with pytest.raises(StorageCorruptionError):
            SQLiteStore(path)


class TestNodePersistenceContract:
    def test_load_of_empty_store_refused(self):
        persistence = NodePersistence(MemoryStore())
        with pytest.raises(StorageCorruptionError,
                           match="neither a genesis"):
            persistence.load()

    def test_unknown_record_kind_refused(self):
        store = MemoryStore()
        store.append("blob", {"x": 1})
        persistence = NodePersistence(store)
        with pytest.raises(StorageError, match="unknown record kind"):
            persistence.load()

    def test_scan_picks_up_epoch_state_on_reopen(self, tmp_path):
        from .harness import build_golden_store

        _, persistence, epoch = build_golden_store(str(tmp_path))
        persistence.store.close()
        reopened = NodePersistence(
            FileStore(os.path.join(str(tmp_path), "log.jsonl")))
        assert reopened.epoch == epoch.epoch + 1
        assert reopened.transactions_logged == 1  # the tail record
        reopened.store.close()
