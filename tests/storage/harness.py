"""Shared builders for the storage test-suite.

``build_golden_store`` journals a tiny, fully pinned workload — every
key seed, timestamp, parent choice and difficulty is a literal — so the
resulting log bytes and epoch snapshot are a pure function of the code,
reproducible on any platform.  The golden-format tests byte-compare its
output against checked-in files; corruption tests mutate copies of it.
"""

from __future__ import annotations

import os
import random

from repro.core.acl import AuthorizationList
from repro.core.consensus import CreditBasedConsensus, InverseDifficultyPolicy
from repro.core.credit import CreditParameters, CreditRegistry
from repro.crypto.keys import KeyPair
from repro.nodes.full_node import FullNode
from repro.nodes.manager import ManagerNode
from repro.storage.persistence import NodePersistence
from repro.storage.store import FileStore
from repro.tangle.ledger import TransferPayload
from repro.tangle.transaction import Transaction, TransactionKind


def golden_keys():
    manager = KeyPair.generate(seed=b"golden:manager")
    device = KeyPair.generate(seed=b"golden:device")
    return manager, device


def new_consensus() -> CreditBasedConsensus:
    params = CreditParameters()
    return CreditBasedConsensus(
        CreditRegistry(params),
        policy=InverseDifficultyPolicy(initial_difficulty=1),
        max_parent_age=params.delta_t,
    )


def build_golden_store(directory: str):
    """Journal the pinned golden workload into ``<directory>/log.jsonl``.

    Layout of the log: genesis record, three journalled transactions
    (ACL authorize, data, transfer), an epoch-0 checkpoint (not
    pruned, so the full chain stays visible), and one post-checkpoint
    tail transaction.  Returns ``(node, persistence, epoch)``.
    """
    manager_keys, device_keys = golden_keys()
    genesis = ManagerNode.create_genesis(
        manager_keys,
        network_name="golden",
        token_allocations=[(manager_keys.node_id, 100),
                           (device_keys.node_id, 100)],
    )
    node = FullNode("golden", genesis, consensus=new_consensus(),
                    rng=random.Random(0), enforce_pow=True)
    store = FileStore(os.path.join(directory, "log.jsonl"))
    persistence = NodePersistence(store)
    node.attach_persistence(persistence)

    acl_tx = Transaction.create(
        manager_keys, kind=TransactionKind.ACL,
        payload=AuthorizationList.make_update(
            [device_keys.public]).to_bytes(),
        timestamp=1.0, branch=genesis.tx_hash, trunk=genesis.tx_hash,
        difficulty=1)
    data_tx = Transaction.create(
        device_keys, kind=TransactionKind.DATA, payload=b"golden-data",
        timestamp=2.0, branch=acl_tx.tx_hash, trunk=genesis.tx_hash,
        difficulty=1)
    transfer_tx = Transaction.create(
        device_keys, kind=TransactionKind.TRANSFER,
        payload=TransferPayload(
            sender=device_keys.node_id, recipient=manager_keys.node_id,
            amount=5, sequence=0).to_bytes(),
        timestamp=3.0, branch=data_tx.tx_hash, trunk=acl_tx.tx_hash,
        difficulty=1)
    for tx in (acl_tx, data_tx, transfer_tx):
        assert node.ingest_local(tx), tx
    epoch = persistence.checkpoint(node, now=4.0, prune_log=False)
    tail_tx = Transaction.create(
        device_keys, kind=TransactionKind.DATA, payload=b"golden-tail",
        timestamp=5.0, branch=transfer_tx.tx_hash,
        trunk=transfer_tx.tx_hash, difficulty=1)
    assert node.ingest_local(tail_tx)
    return node, persistence, epoch


def flip_byte(path: str, offset: int, xor: int) -> None:
    """Corrupt one byte of *path* in place (``xor`` must be non-zero)."""
    with open(path, "rb") as handle:
        raw = bytearray(handle.read())
    raw[offset % len(raw)] ^= (xor or 1)
    with open(path, "wb") as handle:
        handle.write(bytes(raw))
