"""The crash/restart differential: a node restored from its durable
store must be byte-identical (tangle/ledger/ACL/credit hashes) to a
reference node that never crashed — for multiple seeds, randomized kill
points, and both durable backends."""

import json

import pytest

from repro.storage.differential import run_differential

SEEDS = [7, 19]


class TestDifferentialGreen:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_restored_node_matches_reference(self, tmp_path, seed):
        result = run_differential(seed=seed, storage_dir=str(tmp_path),
                                  backend="file")
        assert result["matched"], result
        assert not result["divergences"]
        # The acceptance criterion: >= 3 randomized kill points, each
        # restored to byte-identical state hashes.
        assert len(result["kills"]) >= 3
        for kill in result["kills"]:
            assert kill["matched"], kill
            assert kill["replayed"] >= 0
        final = result["final"]
        assert final["reference"] == final["restarted"] \
            == final["cold"]["hashes"]

    def test_sqlite_backend_green(self, tmp_path):
        result = run_differential(seed=SEEDS[0], storage_dir=str(tmp_path),
                                  backend="sqlite")
        assert result["matched"], result

    def test_backends_agree_exactly(self, tmp_path):
        """The two durable backends hold the same hash-chained records,
        so the whole differential result — kill hashes, epoch hashes,
        log head — must be identical between them."""
        file_result = run_differential(
            seed=SEEDS[1], storage_dir=str(tmp_path / "file"),
            backend="file", steps=40, kills=2, checkpoints=2)
        sqlite_result = run_differential(
            seed=SEEDS[1], storage_dir=str(tmp_path / "sqlite"),
            backend="sqlite", steps=40, kills=2, checkpoints=2)
        file_result["backend"] = sqlite_result["backend"] = "-"
        assert file_result == sqlite_result

    def test_pure_log_replay_without_checkpoints(self, tmp_path):
        """A kill before any checkpoint exists restores by replaying
        the full journal from genesis."""
        result = run_differential(seed=3, storage_dir=str(tmp_path),
                                  backend="file", checkpoints=0)
        assert result["matched"], result
        assert result["epoch_hashes"] == []
        for kill in result["kills"]:
            assert kill["replayed"] > 0


class TestDeterminism:
    def test_same_seed_same_result_bytes(self, tmp_path):
        results = [
            run_differential(seed=7, storage_dir=str(tmp_path / str(i)),
                             backend="file", steps=30, kills=2,
                             checkpoints=2)
            for i in range(2)
        ]
        first, second = (json.dumps(r, sort_keys=True) for r in results)
        assert first == second

    def test_different_seeds_different_workloads(self, tmp_path):
        a = run_differential(seed=7, storage_dir=str(tmp_path / "a"),
                             backend="file", steps=30, kills=2,
                             checkpoints=2)
        b = run_differential(seed=8, storage_dir=str(tmp_path / "b"),
                             backend="file", steps=30, kills=2,
                             checkpoints=2)
        assert a["log"]["head"] != b["log"]["head"]


class TestArguments:
    def test_too_short_workload_refused(self, tmp_path):
        with pytest.raises(ValueError):
            run_differential(seed=7, storage_dir=str(tmp_path), steps=10)

    def test_zero_kills_refused(self, tmp_path):
        with pytest.raises(ValueError):
            run_differential(seed=7, storage_dir=str(tmp_path), kills=0)
