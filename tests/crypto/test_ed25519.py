"""Tests for repro.crypto.ed25519 against RFC 8032."""

import pytest

from repro.crypto.ed25519 import (
    PUBLIC_KEY_SIZE,
    SECRET_KEY_SIZE,
    SIGNATURE_SIZE,
    generate_secret_key,
    public_from_secret,
    sign,
    verify,
)

# RFC 8032 §7.1 test vectors (secret, public, message, signature).
RFC8032_VECTORS = [
    (
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
        "",
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b",
    ),
    (
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
        "72",
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00",
    ),
    (
        "c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
        "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
        "af82",
        "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
        "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a",
    ),
]


class TestRfc8032Vectors:
    @pytest.mark.parametrize("secret_hex,public_hex,msg_hex,sig_hex",
                             RFC8032_VECTORS)
    def test_public_key_derivation(self, secret_hex, public_hex, msg_hex, sig_hex):
        assert public_from_secret(bytes.fromhex(secret_hex)).hex() == public_hex

    @pytest.mark.parametrize("secret_hex,public_hex,msg_hex,sig_hex",
                             RFC8032_VECTORS)
    def test_signature(self, secret_hex, public_hex, msg_hex, sig_hex):
        signature = sign(bytes.fromhex(secret_hex), bytes.fromhex(msg_hex))
        assert signature.hex() == sig_hex

    @pytest.mark.parametrize("secret_hex,public_hex,msg_hex,sig_hex",
                             RFC8032_VECTORS)
    def test_verification(self, secret_hex, public_hex, msg_hex, sig_hex):
        assert verify(
            bytes.fromhex(public_hex),
            bytes.fromhex(msg_hex),
            bytes.fromhex(sig_hex),
        )


class TestVerificationRejections:
    SECRET = bytes.fromhex(RFC8032_VECTORS[0][0])
    PUBLIC = bytes.fromhex(RFC8032_VECTORS[0][1])

    def test_rejects_modified_message(self):
        signature = sign(self.SECRET, b"original")
        assert not verify(self.PUBLIC, b"modified", signature)

    def test_rejects_modified_signature(self):
        signature = bytearray(sign(self.SECRET, b"m"))
        signature[0] ^= 0x01
        assert not verify(self.PUBLIC, b"m", bytes(signature))

    def test_rejects_wrong_public_key(self):
        other_public = public_from_secret(generate_secret_key(seed=b"other"))
        signature = sign(self.SECRET, b"m")
        assert not verify(other_public, b"m", signature)

    def test_rejects_bad_lengths(self):
        signature = sign(self.SECRET, b"m")
        assert not verify(self.PUBLIC[:-1], b"m", signature)
        assert not verify(self.PUBLIC, b"m", signature[:-1])

    def test_rejects_non_canonical_s(self):
        # s >= L must be rejected (malleability defence).
        signature = bytearray(sign(self.SECRET, b"m"))
        signature[32:] = (b"\xff" * 32)
        assert not verify(self.PUBLIC, b"m", bytes(signature))

    def test_rejects_garbage_point_encoding(self):
        assert not verify(b"\xff" * 32, b"m", bytes(64))


class TestKeyGeneration:
    def test_seeded_is_deterministic(self):
        assert generate_secret_key(seed=b"s") == generate_secret_key(seed=b"s")

    def test_different_seeds_differ(self):
        assert generate_secret_key(seed=b"a") != generate_secret_key(seed=b"b")

    def test_unseeded_is_random(self):
        assert generate_secret_key() != generate_secret_key()

    def test_sizes(self):
        secret = generate_secret_key(seed=b"s")
        assert len(secret) == SECRET_KEY_SIZE
        assert len(public_from_secret(secret)) == PUBLIC_KEY_SIZE
        assert len(sign(secret, b"m")) == SIGNATURE_SIZE

    def test_secret_length_checked(self):
        with pytest.raises(ValueError):
            public_from_secret(b"short")

    def test_sign_verify_roundtrip_fresh_key(self):
        secret = generate_secret_key(seed=b"roundtrip")
        public = public_from_secret(secret)
        for message in (b"", b"a", b"x" * 1000):
            assert verify(public, message, sign(secret, message))

    def test_signature_is_deterministic(self):
        secret = generate_secret_key(seed=b"det")
        assert sign(secret, b"m") == sign(secret, b"m")
