"""Tests for repro.crypto.accel.pool: pooled PoW and verification.

The pool's contract is determinism: pooled ``solve`` must return the
*identical* ``(nonce, attempts)`` pair as sequential
``hashcash.solve``, and ``verify_many`` must preserve input order and
agree with per-item verification — on every platform, including ones
where ``multiprocessing`` is unavailable and the pool silently runs
sequentially.
"""

import pytest

from repro.crypto.accel import CryptoPool
from repro.crypto.accel.pool import _scan_chunk, _verify_one
from repro.crypto.ed25519 import generate_secret_key, public_from_secret, sign
from repro.pow import hashcash

CHALLENGE = b"pool-test-challenge"


@pytest.fixture(scope="module")
def pool():
    with CryptoPool(2, chunk_size=512) as shared:
        yield shared


class TestPooledSolve:
    @pytest.mark.parametrize("difficulty,start_nonce", [
        (8, 0),
        (8, 5000),
        (12, 0),
        (10, 123456),
        (8, 2 ** 64 - 2),  # wrap-around boundary
    ])
    def test_matches_sequential(self, pool, difficulty, start_nonce):
        expected = hashcash.solve(CHALLENGE, difficulty,
                                  start_nonce=start_nonce)
        got = pool.solve(CHALLENGE, difficulty, start_nonce=start_nonce)
        assert (got.nonce, got.attempts) == (expected.nonce,
                                             expected.attempts)
        assert got.difficulty == difficulty
        assert hashcash.verify(CHALLENGE, got.nonce, difficulty)

    def test_max_attempts_delegates_sequentially(self, pool):
        expected = hashcash.solve(CHALLENGE, 8, max_attempts=10 ** 6)
        got = pool.solve(CHALLENGE, 8, max_attempts=10 ** 6)
        assert (got.nonce, got.attempts) == (expected.nonce,
                                             expected.attempts)

    def test_difficulty_validated(self, pool):
        with pytest.raises(ValueError):
            pool.solve(CHALLENGE, hashcash.MAX_DIFFICULTY + 1)

    def test_single_worker_runs_inline(self):
        with CryptoPool(1) as inline:
            expected = hashcash.solve(CHALLENGE, 8)
            got = inline.solve(CHALLENGE, 8)
            assert (got.nonce, got.attempts) == (expected.nonce,
                                                 expected.attempts)
            assert inline._pool is None  # never forked

    def test_scan_chunk_wraps(self):
        # A chunk straddling 2**64 scans ... 2**64-1, 0, 1 ... and
        # reports the first hit in that (wrapped) order, or None.
        hit = _scan_chunk((CHALLENGE, 1, 2 ** 64 - 2, 64))
        assert hit is not None
        expected = hashcash.solve(CHALLENGE, 1, start_nonce=2 ** 64 - 2)
        assert hit == expected.nonce


class TestVerifyMany:
    def _items(self, count):
        items = []
        for i in range(count):
            secret = generate_secret_key(seed=b"pool-%d" % i)
            message = b"m%d" % i
            items.append((public_from_secret(secret), message,
                          sign(secret, message)))
        return items

    def test_order_preserving_agreement(self, pool):
        items = self._items(6)
        items[2] = (items[2][0], b"tampered", items[2][2])
        items[4] = (items[4][0], items[4][1], bytes(64))
        expected = [_verify_one(item) for item in items]
        assert expected == [True, True, False, True, False, True]
        assert pool.verify_many(items) == expected

    def test_empty_and_single(self, pool):
        assert pool.verify_many([]) == []
        (item,) = self._items(1)
        assert pool.verify_many([item]) == [True]


class TestLifecycle:
    def test_worker_count_validated(self):
        with pytest.raises(ValueError):
            CryptoPool(0)
        with pytest.raises(ValueError):
            CryptoPool(2, chunk_size=0)

    def test_close_is_idempotent(self):
        pool = CryptoPool(2)
        pool.solve(CHALLENGE, 4)
        pool.close()
        pool.close()
        # Post-close use lazily re-creates the pool.
        proof = pool.solve(CHALLENGE, 4)
        assert hashcash.verify(CHALLENGE, proof.nonce, 4)
        pool.close()

    def test_unavailable_platform_falls_back(self, monkeypatch):
        import multiprocessing

        def broken_pool(*args, **kwargs):
            raise OSError("no fork in this sandbox")

        monkeypatch.setattr(multiprocessing, "Pool", broken_pool)
        pool = CryptoPool(4)
        expected = hashcash.solve(CHALLENGE, 8)
        got = pool.solve(CHALLENGE, 8)
        assert (got.nonce, got.attempts) == (expected.nonce,
                                             expected.attempts)
        assert pool._unavailable
        items = [(b"\x00" * 32, b"m", bytes(64))] * 2
        assert pool.verify_many(items) == [False, False]
