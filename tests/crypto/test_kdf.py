"""Tests for repro.crypto.kdf against RFC 5869."""

import pytest

from repro.crypto.kdf import (
    constant_time_equal,
    hkdf,
    hkdf_expand,
    hkdf_extract,
    hmac_sha256,
)


class TestRfc5869Vectors:
    def test_case_1(self):
        ikm = bytes.fromhex("0b" * 22)
        salt = bytes.fromhex("000102030405060708090a0b0c")
        info = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9")
        prk = hkdf_extract(salt, ikm)
        assert prk.hex() == (
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
        okm = hkdf_expand(prk, info, 42)
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865")

    def test_case_2_long_inputs(self):
        ikm = bytes(range(0x00, 0x50))
        salt = bytes(range(0x60, 0xB0))
        info = bytes(range(0xB0, 0x100))
        okm = hkdf(ikm, salt=salt, info=info, length=82)
        assert okm.hex() == (
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87")

    def test_case_3_empty_salt_and_info(self):
        ikm = bytes.fromhex("0b" * 22)
        okm = hkdf(ikm, salt=b"", info=b"", length=42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8")


class TestHkdfBounds:
    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            hkdf(b"ikm", length=0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            hkdf(b"ikm", length=-1)

    def test_max_length_enforced(self):
        with pytest.raises(ValueError):
            hkdf(b"ikm", length=255 * 32 + 1)

    def test_max_length_allowed(self):
        assert len(hkdf(b"ikm", length=255 * 32)) == 255 * 32

    def test_exact_length_returned(self):
        for length in (1, 31, 32, 33, 64, 100):
            assert len(hkdf(b"ikm", length=length)) == length

    def test_info_separates_outputs(self):
        assert hkdf(b"ikm", info=b"a") != hkdf(b"ikm", info=b"b")

    def test_salt_separates_outputs(self):
        assert hkdf(b"ikm", salt=b"a") != hkdf(b"ikm", salt=b"b")


class TestHmacHelpers:
    def test_rfc4231_case_2(self):
        # HMAC-SHA256 with key "Jefe".
        tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert tag.hex() == (
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")

    def test_constant_time_equal(self):
        assert constant_time_equal(b"same", b"same")
        assert not constant_time_equal(b"same", b"diff")
        assert not constant_time_equal(b"same", b"samelonger")
