"""Tests for repro.crypto.hashing."""

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import (
    DIGEST_SIZE,
    MerkleTree,
    double_sha256,
    hash_concat,
    leading_zero_bits,
    merkle_root,
    sha256,
    sha256_hex,
    sha512,
)


class TestBasicHashes:
    def test_sha256_empty(self):
        assert sha256(b"").hex() == (
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_sha256_abc(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_sha512_abc(self):
        assert sha512(b"abc") == hashlib.sha512(b"abc").digest()

    def test_double_sha256_is_nested(self):
        data = b"nested hashing"
        assert double_sha256(data) == sha256(sha256(data))

    def test_sha256_hex_matches_digest(self):
        assert sha256_hex(b"x") == sha256(b"x").hex()

    def test_digest_size(self):
        assert len(sha256(b"anything")) == DIGEST_SIZE


class TestHashConcat:
    def test_differs_from_plain_concat(self):
        # The length prefix must make ("ab","c") != ("a","bc").
        assert hash_concat(b"ab", b"c") != hash_concat(b"a", b"bc")

    def test_empty_parts_are_significant(self):
        assert hash_concat(b"a", b"") != hash_concat(b"a")

    def test_deterministic(self):
        assert hash_concat(b"x", b"y") == hash_concat(b"x", b"y")

    def test_order_matters(self):
        assert hash_concat(b"x", b"y") != hash_concat(b"y", b"x")

    @given(st.lists(st.binary(max_size=64), min_size=1, max_size=5))
    def test_always_32_bytes(self, parts):
        assert len(hash_concat(*parts)) == DIGEST_SIZE


class TestLeadingZeroBits:
    def test_all_zero_digest(self):
        assert leading_zero_bits(b"\x00" * 32) == 256

    def test_no_leading_zeros(self):
        assert leading_zero_bits(b"\xff" + b"\x00" * 31) == 0

    def test_half_byte(self):
        assert leading_zero_bits(b"\x0f" + b"\xff" * 31) == 4

    def test_one_full_zero_byte(self):
        assert leading_zero_bits(b"\x00\x80" + b"\x00" * 30) == 8

    def test_single_low_bit(self):
        assert leading_zero_bits(b"\x01" + b"\x00" * 31) == 7

    @given(st.binary(min_size=1, max_size=32))
    def test_matches_integer_interpretation(self, data):
        as_int = int.from_bytes(data, "big")
        expected = len(data) * 8 - as_int.bit_length()
        assert leading_zero_bits(data) == expected


class TestMerkleTree:
    def test_single_leaf_root(self):
        tree = MerkleTree([b"only"])
        assert tree.root == sha256(b"\x00only")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_root_changes_with_leaf(self):
        a = MerkleTree([b"a", b"b"]).root
        b = MerkleTree([b"a", b"c"]).root
        assert a != b

    def test_root_changes_with_order(self):
        assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root

    def test_leaf_vs_node_domain_separation(self):
        # A single leaf equal to a concatenated-node encoding must not
        # produce an interior digest.
        inner = MerkleTree([b"a", b"b"])
        fake_leaf = inner._levels[0][0] + inner._levels[0][1]
        assert MerkleTree([fake_leaf]).root != inner.root

    @pytest.mark.parametrize("count", [1, 2, 3, 4, 5, 8, 13])
    def test_proofs_verify_for_all_leaves(self, count):
        leaves = [f"leaf-{i}".encode() for i in range(count)]
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            proof = tree.proof(index)
            assert MerkleTree.verify_proof(leaf, proof, tree.root)

    def test_proof_fails_for_wrong_leaf(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        proof = tree.proof(0)
        assert not MerkleTree.verify_proof(b"x", proof, tree.root)

    def test_proof_fails_for_wrong_root(self):
        tree = MerkleTree([b"a", b"b", b"c"])
        proof = tree.proof(1)
        assert not MerkleTree.verify_proof(b"b", proof, b"\x00" * 32)

    def test_proof_index_out_of_range(self):
        tree = MerkleTree([b"a"])
        with pytest.raises(IndexError):
            tree.proof(1)
        with pytest.raises(IndexError):
            tree.proof(-1)

    def test_leaf_count(self):
        assert MerkleTree([b"a", b"b", b"c"]).leaf_count == 3

    @given(st.lists(st.binary(max_size=16), min_size=1, max_size=20),
           st.data())
    def test_property_random_proofs(self, leaves, data):
        tree = MerkleTree(leaves)
        index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
        proof = tree.proof(index)
        assert MerkleTree.verify_proof(leaves[index], proof, tree.root)


class TestMerkleRoot:
    def test_empty_is_zero(self):
        assert merkle_root([]) == b"\x00" * DIGEST_SIZE

    def test_nonempty_matches_tree(self):
        leaves = [b"x", b"y"]
        assert merkle_root(leaves) == MerkleTree(leaves).root
