"""Differential tests: the accel Ed25519 lane vs the reference.

The accel module's whole contract is *bit-exactness*: ``sign``,
``public_from_secret`` and ``verify`` must agree with
:mod:`repro.crypto.ed25519` on every input, and ``verify_batch`` must
agree with per-item sequential verification — including on adversarial
inputs (small-order and mixed-order points, non-canonical encodings,
``s >= L``) where a naive batch equation would accept what the
cofactorless reference rejects.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import ed25519 as ref
from repro.crypto.accel import (
    CRYPTO_BACKENDS,
    get_backend,
)
from repro.crypto.accel import ed25519_accel as acc
from repro.crypto.ed25519 import (
    _D,
    _IDENTITY,
    _L,
    _P,
    _point_add,
    _point_compress,
    _point_decompress,
    _point_equal,
    _secret_expand,
    _sha512_int,
    generate_secret_key,
)

# -- helpers ---------------------------------------------------------------


def _mul(scalar, point):
    """Reference-arithmetic double-and-add (independent of accel code)."""
    acc_point = _IDENTITY
    while scalar:
        if scalar & 1:
            acc_point = _point_add(acc_point, point)
        point = _point_add(point, point)
        scalar >>= 1
    return acc_point


def _order(point):
    """Order of *point* within the 8-torsion subgroup (1, 2, 4 or 8)."""
    for order in (1, 2, 4, 8):
        if _point_equal(_mul(order, point), _IDENTITY):
            return order
    raise AssertionError("point is not 8-torsion")


def _sqrt(a):
    """Square root mod p (p = 5 mod 8), or None for non-residues."""
    root = pow(a, (_P + 3) // 8, _P)
    if root * root % _P != a % _P:
        root = root * acc._SQRT_M1 % _P
    if root * root % _P != a % _P:
        return None
    return root


def small_order_encodings():
    """All decodable small-order point encodings, derived from the
    curve equation (not hardcoded literature constants).

    Order 1: (0, 1).  Order 2: (0, -1).  Order 4: (±sqrt(-1), 0) — the
    doubling formula sends y=0 points to (0, -1).  Order 8: doubling
    into an order-4 point forces y² = -x², and substituting into the
    curve equation gives d·x⁴ - 2x² - 1 = 0, i.e. x² = (1 ± √(1+d))/d.
    """
    points = [(0, 1), (0, _P - 1),
              (acc._SQRT_M1, 0), (_P - acc._SQRT_M1, 0)]
    disc = _sqrt((1 + _D) % _P)
    assert disc is not None
    inv_d = pow(_D, _P - 2, _P)
    for root in (disc, _P - disc):
        xx = (1 + root) * inv_d % _P
        x = _sqrt(xx)
        if x is None:
            continue
        y = _sqrt((-xx) % _P)
        assert y is not None
        for px in (x, _P - x):
            for py in (y, _P - y):
                points.append((px, py))
    encodings = []
    for x, y in points:
        encoded = bytearray(y.to_bytes(32, "little"))
        encoded[31] |= (x & 1) << 7
        encodings.append(bytes(encoded))
    return encodings


def torsion_signature(seed, message, torsion_encoding):
    """A (pk, msg, sig) triple the *cofactored* equation accepts but
    the cofactorless reference rejects.

    The public key is ``A + T`` for an honest ``A = a·B`` and a torsion
    point ``T``; signing with the honest scalar against the shifted
    key's challenge leaves a pure-torsion defect ``-h·T`` in the
    verification equation.
    """
    secret = generate_secret_key(seed=seed)
    scalar, prefix = _secret_expand(secret)
    torsion = _point_decompress(torsion_encoding)
    shifted = _point_compress(_point_add(_mul(scalar, ref._BASE), torsion))
    r = _sha512_int(prefix, message) % _L
    r_enc = _point_compress(_mul(r, ref._BASE))
    challenge = _sha512_int(r_enc, shifted, message) % _L
    s = (r + challenge * scalar) % _L
    return shifted, message, r_enc + s.to_bytes(32, "little")


def make_items(count, *, seed_prefix=b"batch", issuers=None):
    """*count* honest (pk, msg, sig) triples across *issuers* keys."""
    issuers = issuers or count
    secrets = [generate_secret_key(seed=seed_prefix + b"%d" % i)
               for i in range(issuers)]
    publics = [ref.public_from_secret(secret) for secret in secrets]
    items = []
    for i in range(count):
        message = b"msg-%d" % i
        items.append((publics[i % issuers], message,
                      ref.sign(secrets[i % issuers], message)))
    return items


SMALL_ORDER = small_order_encodings()


# -- scalar API ------------------------------------------------------------


class TestScalarDifferential:
    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=32, max_size=32),
           st.binary(max_size=64))
    def test_sign_and_public_byte_identical(self, secret, message):
        assert acc.public_from_secret(secret) == ref.public_from_secret(secret)
        assert acc.sign(secret, message) == ref.sign(secret, message)

    @settings(max_examples=25, deadline=None)
    @given(st.binary(min_size=32, max_size=32),
           st.binary(max_size=64),
           st.integers(min_value=0, max_value=63),
           st.integers(min_value=1, max_value=255))
    def test_verify_agreement_tampered(self, secret, message, pos, flip):
        public = ref.public_from_secret(secret)
        signature = bytearray(ref.sign(secret, message))
        assert acc.verify(public, message, bytes(signature))
        signature[pos] ^= flip
        tampered = bytes(signature)
        assert (acc.verify(public, message, tampered)
                == ref.verify(public, message, tampered))

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=32, max_size=32))
    def test_decompress_equivalence_fuzz(self, encoding):
        try:
            expected = _point_decompress(encoding)
        except ValueError:
            expected = None
        try:
            got = acc._decompress_cached(encoding)
        except ValueError:
            got = None
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert _point_equal(got, expected)

    @pytest.mark.parametrize("encoding", [
        _P.to_bytes(32, "little"),                      # y = p
        (_P + 1).to_bytes(32, "little"),                # y = p + 1
        bytes([1] + [0] * 30 + [0x80]),                 # x=0, sign bit set
        b"\xff" * 32,                                   # y >= p with sign
    ])
    def test_decompress_rejections_agree(self, encoding):
        with pytest.raises(ValueError):
            _point_decompress(encoding)
        with pytest.raises(ValueError):
            acc._decompress_cached(encoding)

    def test_decompress_cache_bounded(self):
        acc._decompress_cache.clear()
        base = bytearray(ref.public_from_secret(
            generate_secret_key(seed=b"cache")))
        acc._decompress_cached(bytes(base))
        for i in range(acc._DECOMPRESS_CACHE_SIZE + 16):
            secret = generate_secret_key(seed=b"cache-%d" % i)
            acc._decompress_cached(ref.public_from_secret(secret))
        assert len(acc._decompress_cache) <= acc._DECOMPRESS_CACHE_SIZE

    def test_bad_lengths_rejected(self):
        secret = generate_secret_key(seed=b"len")
        public = ref.public_from_secret(secret)
        signature = ref.sign(secret, b"m")
        assert not acc.verify(public[:-1], b"m", signature)
        assert not acc.verify(public, b"m", signature[:-1])


# -- adversarial encodings -------------------------------------------------


class TestAdversarial:
    def test_small_order_derivation(self):
        # The full 8-torsion subgroup: 1 + 1 + 2 + 4 points by order.
        orders = sorted(_order(_point_decompress(enc))
                        for enc in SMALL_ORDER)
        assert orders == [1, 2, 4, 4, 8, 8, 8, 8]
        assert len(set(SMALL_ORDER)) == 8

    @pytest.mark.parametrize("encoding", SMALL_ORDER)
    def test_small_order_public_key_agreement(self, encoding):
        # s=0 signatures against small-order keys: the classic forgery
        # shape.  No exceptions, and accel agrees with the reference.
        for r_enc in (SMALL_ORDER[0], SMALL_ORDER[1]):
            signature = r_enc + bytes(32)
            expected = ref.verify(encoding, b"m", signature)
            assert acc.verify(encoding, b"m", signature) == expected

    @pytest.mark.parametrize("encoding", SMALL_ORDER)
    def test_small_order_commitment_agreement(self, encoding):
        secret = generate_secret_key(seed=b"so-commit")
        public = ref.public_from_secret(secret)
        signature = encoding + bytes(32)
        expected = ref.verify(public, b"m", signature)
        assert acc.verify(public, b"m", signature) == expected

    @pytest.mark.parametrize("s_value", [_L, _L + 1, 2 ** 256 - 1])
    def test_non_canonical_s_rejected(self, s_value):
        secret = generate_secret_key(seed=b"s-range")
        public = ref.public_from_secret(secret)
        signature = ref.sign(secret, b"m")[:32] + s_value.to_bytes(
            32, "little")
        assert not ref.verify(public, b"m", signature)
        assert not acc.verify(public, b"m", signature)

    @pytest.mark.parametrize("torsion", SMALL_ORDER[1:])
    def test_torsion_defect_rejected_by_batch(self, torsion):
        """A single mixed-order defect must fail the combined equation
        deterministically (odd coefficients annihilate nothing in the
        torsion subgroup) and fall back to per-item agreement."""
        defective = torsion_signature(b"torsion", b"attack", torsion)
        # Cofactorless reference rejects it (unless h happened to kill
        # the torsion component — then it is simply a valid signature
        # and there is nothing adversarial to check).
        expected = ref.verify(*defective)
        assert acc.verify(*defective) == expected
        items = make_items(3) + [defective]
        sequential = [ref.verify(*item) for item in items]
        assert acc.verify_batch(items) == sequential

    def test_torsion_defect_is_cofactored_valid(self):
        """The defect really is the interesting class: multiplying the
        verification gap by 8 yields the identity."""
        public, message, signature = torsion_signature(
            b"torsion", b"attack", SMALL_ORDER[4])
        assert not ref.verify(public, message, signature)
        a_point = _point_decompress(public)
        r_point = _point_decompress(signature[:32])
        s = int.from_bytes(signature[32:], "little")
        challenge = _sha512_int(signature[:32], public, message) % _L
        gap = _point_add(
            _mul(s, ref._BASE),
            acc._point_neg(_point_add(r_point, _mul(challenge, a_point))))
        assert not _point_equal(gap, _IDENTITY)
        assert _point_equal(_mul(8, gap), _IDENTITY)


# -- batch verification ----------------------------------------------------


class TestBatch:
    def test_empty_batch(self):
        assert acc.verify_batch([]) == []

    def test_single_item_batch(self):
        (item,) = make_items(1)
        assert acc.verify_batch([item]) == [True]
        bad = (item[0], item[1], item[2][:32] + bytes(32))
        assert acc.verify_batch([bad]) == [ref.verify(*bad)]

    def test_all_valid_multiple_issuers(self):
        items = make_items(8, issuers=4)
        assert acc.verify_batch(items) == [True] * 8

    def test_single_issuer_merged_columns(self):
        # 16 signatures from one key collapse to one A-column; the
        # merged equation must still accept all and reject tampering.
        items = make_items(16, issuers=1)
        assert acc.verify_batch(items) == [True] * 16
        public, message, signature = items[7]
        items[7] = (public, message + b"!", signature)
        expected = [ref.verify(*item) for item in items]
        assert acc.verify_batch(items) == expected

    def test_fallback_on_corruption(self):
        items = make_items(6, issuers=3)
        public, message, signature = items[2]
        corrupted = bytearray(signature)
        corrupted[10] ^= 0xFF
        items[2] = (public, message, bytes(corrupted))
        expected = [ref.verify(*item) for item in items]
        assert expected.count(False) == 1
        assert acc.verify_batch(items) == expected

    def test_structurally_invalid_items_skipped(self):
        items = make_items(3)
        items.append((b"short", b"m", bytes(64)))
        items.append((items[0][0], b"m", bytes(63)))
        items.append((b"\xff" * 32, b"m", bytes(64)))
        expected = [ref.verify(*item) for item in items]
        assert acc.verify_batch(items) == expected

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=0, max_value=5),
           st.integers(min_value=0, max_value=63))
    def test_batch_sequential_agreement_fuzz(self, count, corrupt, pos):
        items = make_items(count, seed_prefix=b"fuzz")
        if corrupt < count:
            public, message, signature = items[corrupt]
            mutated = bytearray(signature)
            mutated[pos] ^= 0x01
            items[corrupt] = (public, message, bytes(mutated))
        expected = [ref.verify(*item) for item in items]
        assert acc.verify_batch(items) == expected


# -- backend registry ------------------------------------------------------


class TestBackendRegistry:
    def test_known_backends(self):
        assert set(CRYPTO_BACKENDS) == {"reference", "accel"}

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown crypto backend"):
            get_backend("turbo")

    @pytest.mark.parametrize("name", ["reference", "accel"])
    def test_backend_roundtrip(self, name):
        backend = get_backend(name)
        assert backend.name == name
        secret = generate_secret_key(seed=b"backend")
        public = backend.public_from_secret(secret)
        assert public == ref.public_from_secret(secret)
        signature = backend.sign(secret, b"m")
        assert signature == ref.sign(secret, b"m")
        assert backend.verify(public, b"m", signature)
        assert not backend.verify(public, b"x", signature)

    def test_reference_batch_is_sequential(self):
        backend = get_backend("reference")
        items = make_items(4)
        items[1] = (items[1][0], items[1][1] + b"!", items[1][2])
        assert backend.verify_batch(items) == [
            ref.verify(*item) for item in items]
