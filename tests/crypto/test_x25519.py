"""Tests for repro.crypto.x25519 against RFC 7748."""

import pytest

from repro.crypto.x25519 import (
    X25519_KEY_SIZE,
    generate_private_key,
    public_from_private,
    x25519,
    x25519_base,
)


class TestRfc7748Vectors:
    def test_vector_1(self):
        scalar = bytes.fromhex(
            "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4")
        u = bytes.fromhex(
            "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c")
        assert x25519(scalar, u).hex() == (
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552")

    def test_vector_2(self):
        scalar = bytes.fromhex(
            "4b66e9d4d1b4673c5ad22691957d6af5c11b6421e0ea01d42ca4169e7918ba0d")
        u = bytes.fromhex(
            "e5210f12786811d3f4b7959d0538ae2c31dbe7106fc03c3efc4cd549c715a493")
        assert x25519(scalar, u).hex() == (
            "95cbde9476e8907d7aade45cb4b873f88b595a68799fa152e6f8f7647aac7957")

    def test_alice_bob_public_keys(self):
        alice = bytes.fromhex(
            "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a")
        bob = bytes.fromhex(
            "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb")
        assert x25519_base(alice).hex() == (
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a")
        assert x25519_base(bob).hex() == (
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")

    def test_shared_secret_vector(self):
        alice = bytes.fromhex(
            "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a")
        bob_public = bytes.fromhex(
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f")
        assert x25519(alice, bob_public).hex() == (
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742")


class TestDiffieHellman:
    def test_agreement(self):
        a = generate_private_key(seed=b"a")
        b = generate_private_key(seed=b"b")
        assert x25519(a, public_from_private(b)) == x25519(b, public_from_private(a))

    def test_distinct_peers_distinct_secrets(self):
        a = generate_private_key(seed=b"a")
        b = generate_private_key(seed=b"b")
        c = generate_private_key(seed=b"c")
        ab = x25519(a, public_from_private(b))
        ac = x25519(a, public_from_private(c))
        assert ab != ac

    def test_seeded_generation_is_deterministic(self):
        assert generate_private_key(seed=b"s") == generate_private_key(seed=b"s")

    def test_unseeded_generation_is_random(self):
        assert generate_private_key() != generate_private_key()

    def test_key_sizes(self):
        key = generate_private_key(seed=b"s")
        assert len(key) == X25519_KEY_SIZE
        assert len(public_from_private(key)) == X25519_KEY_SIZE


class TestInputValidation:
    def test_scalar_length_checked(self):
        with pytest.raises(ValueError):
            x25519(b"short", bytes(32))

    def test_u_length_checked(self):
        with pytest.raises(ValueError):
            x25519(bytes(32), b"short")

    def test_zero_point_rejected(self):
        # u = 0 is a low-order point: the ladder yields zero.
        with pytest.raises(ValueError):
            x25519(generate_private_key(seed=b"s"), bytes(32))

    def test_high_bit_of_u_is_masked(self):
        # RFC 7748: the top bit of the u-coordinate must be ignored.
        scalar = generate_private_key(seed=b"s")
        u = bytearray(public_from_private(generate_private_key(seed=b"t")))
        plain = x25519(scalar, bytes(u))
        u[31] |= 0x80
        assert x25519(scalar, bytes(u)) == plain
