"""Tests for repro.crypto.rand (swappable randomness source)."""

import pytest

from repro.crypto import rand
from repro.crypto.keys import KeyPair


class TestRandbytes:
    def test_default_source_is_random(self):
        assert rand.randbytes(16) != rand.randbytes(16)

    def test_length(self):
        for n in (0, 1, 31, 32, 33, 100):
            assert len(rand.randbytes(n)) == n

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            rand.randbytes(-1)


class TestDeterministicSource:
    def test_same_seed_same_stream(self):
        a = rand.DeterministicSource(b"seed")
        b = rand.DeterministicSource(b"seed")
        assert [a(8) for _ in range(5)] == [b(8) for _ in range(5)]

    def test_different_seeds_differ(self):
        assert (rand.DeterministicSource(b"a")(32)
                != rand.DeterministicSource(b"b")(32))

    def test_stream_is_stateful(self):
        source = rand.DeterministicSource(b"seed")
        assert source(16) != source(16)

    def test_chunking_irrelevant(self):
        a = rand.DeterministicSource(b"seed")
        b = rand.DeterministicSource(b"seed")
        assert a(10) + a(22) == b(32)


class TestDeterministicContext:
    def test_reproducible_inside_context(self):
        with rand.deterministic(b"ctx"):
            first = rand.randbytes(32)
        with rand.deterministic(b"ctx"):
            second = rand.randbytes(32)
        assert first == second

    def test_restores_default_on_exit(self):
        with rand.deterministic(b"ctx"):
            pass
        assert rand.randbytes(16) != rand.randbytes(16)

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with rand.deterministic(b"ctx"):
                raise RuntimeError("boom")
        assert rand.randbytes(16) != rand.randbytes(16)

    def test_nesting(self):
        with rand.deterministic(b"outer"):
            outer_first = rand.randbytes(8)
            with rand.deterministic(b"inner"):
                inner = rand.randbytes(8)
            outer_second = rand.randbytes(8)
        with rand.deterministic(b"outer"):
            assert rand.randbytes(8) == outer_first
            with rand.deterministic(b"inner"):
                assert rand.randbytes(8) == inner
            assert rand.randbytes(8) == outer_second


class TestWholeSystemDeterminism:
    def test_ecies_envelopes_replay(self):
        from repro.crypto import ecies
        keys = KeyPair.generate(seed=b"det-test")
        with rand.deterministic(b"run"):
            first = ecies.encrypt(keys.public.enc_public, b"payload")
        with rand.deterministic(b"run"):
            second = ecies.encrypt(keys.public.enc_public, b"payload")
        assert first == second
        assert keys.decrypt(first) == b"payload"

    def test_keydist_transcript_replays(self):
        from repro.core.authority import DeviceKeyAgent, ManagerKeyDistributor
        manager = KeyPair.generate(seed=b"det-mgr")
        device = KeyPair.generate(seed=b"det-dev")

        def run_handshake():
            distributor = ManagerKeyDistributor(manager)
            agent = DeviceKeyAgent(device, manager.public)
            session, m1 = distributor.initiate(device.public, now=1.0)
            m2 = agent.handle_m1(m1, now=1.1)
            m3 = distributor.handle_m2(session, m2, now=1.2)
            agent.handle_m3(m3, now=1.3)
            return m1, m2, m3, agent.key_for()

        with rand.deterministic(b"handshake"):
            first = run_handshake()
        with rand.deterministic(b"handshake"):
            second = run_handshake()
        assert first == second

    def test_full_system_run_replays(self):
        """A whole smart-factory run replays bit-for-bit under a seeded
        randomness source: every tangle replica holds identical hashes."""
        from repro.core.biot import BIoTConfig, BIoTSystem

        def run():
            system = BIoTSystem.build(BIoTConfig(
                device_count=2, gateway_count=1, seed=7,
                initial_difficulty=6, report_interval=2.0,
            ))
            system.initialize()
            system.start_devices()
            system.run_for(20.0)
            return sorted(tx.tx_hash for tx in system.gateways[0].tangle)

        with rand.deterministic(b"system-run"):
            first = run()
        with rand.deterministic(b"system-run"):
            second = run()
        assert first == second
        assert len(first) > 5
