"""Tests for repro.crypto.keys (node identities)."""

import pytest

from repro.crypto.ecies import DecryptionError
from repro.crypto.keys import NODE_ID_SIZE, KeyPair, PublicIdentity


class TestKeyPairGeneration:
    def test_seeded_is_deterministic(self):
        a = KeyPair.generate(seed=b"node-1")
        b = KeyPair.generate(seed=b"node-1")
        assert a.node_id == b.node_id
        assert a.public == b.public

    def test_different_seeds_differ(self):
        assert (KeyPair.generate(seed=b"a").node_id
                != KeyPair.generate(seed=b"b").node_id)

    def test_unseeded_is_random(self):
        assert KeyPair.generate().node_id != KeyPair.generate().node_id

    def test_node_id_size(self):
        assert len(KeyPair.generate(seed=b"x").node_id) == NODE_ID_SIZE

    def test_short_id_prefix(self):
        keys = KeyPair.generate(seed=b"x")
        assert keys.short_id == keys.node_id.hex()[:8]
        assert keys.short_id == keys.public.short_id


class TestSigning:
    def test_sign_verify(self, device_keys):
        signature = device_keys.sign(b"reading")
        assert device_keys.public.verify(b"reading", signature)

    def test_verify_rejects_other_signer(self, device_keys, other_keys):
        signature = device_keys.sign(b"reading")
        assert not other_keys.public.verify(b"reading", signature)

    def test_verify_rejects_other_message(self, device_keys):
        signature = device_keys.sign(b"reading")
        assert not device_keys.public.verify(b"tampered", signature)


class TestEncryption:
    def test_encrypt_to_identity(self, device_keys):
        envelope = device_keys.public.encrypt(b"secret")
        assert device_keys.decrypt(envelope) == b"secret"

    def test_wrong_holder_cannot_decrypt(self, device_keys, other_keys):
        envelope = device_keys.public.encrypt(b"secret")
        with pytest.raises(DecryptionError):
            other_keys.decrypt(envelope)


class TestIdentitySerialisation:
    def test_roundtrip(self, device_keys):
        encoded = device_keys.public.to_bytes()
        assert len(encoded) == 64
        restored = PublicIdentity.from_bytes(encoded)
        assert restored == device_keys.public
        assert restored.node_id == device_keys.node_id

    def test_from_bytes_rejects_bad_length(self):
        with pytest.raises(ValueError):
            PublicIdentity.from_bytes(bytes(63))

    def test_constructor_validates_lengths(self):
        with pytest.raises(ValueError):
            PublicIdentity(sign_public=bytes(31), enc_public=bytes(32))
        with pytest.raises(ValueError):
            PublicIdentity(sign_public=bytes(32), enc_public=bytes(31))

    def test_node_id_binds_both_keys(self, device_keys, other_keys):
        mixed = PublicIdentity(
            sign_public=device_keys.public.sign_public,
            enc_public=other_keys.public.enc_public,
        )
        assert mixed.node_id != device_keys.node_id
        assert mixed.node_id != other_keys.node_id

    def test_repr_contains_short_id(self, device_keys):
        assert device_keys.short_id in repr(device_keys.public)
        assert device_keys.short_id in repr(device_keys)
