"""Tests for repro.crypto.ecies hybrid encryption."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.ecies import OVERHEAD, DecryptionError, decrypt, encrypt
from repro.crypto.x25519 import generate_private_key, public_from_private

ALICE = generate_private_key(seed=b"alice")
ALICE_PUB = public_from_private(ALICE)
BOB = generate_private_key(seed=b"bob")


class TestRoundTrip:
    def test_basic(self):
        envelope = encrypt(ALICE_PUB, b"attack at dawn")
        assert decrypt(ALICE, envelope) == b"attack at dawn"

    def test_empty_message(self):
        envelope = encrypt(ALICE_PUB, b"")
        assert decrypt(ALICE, envelope) == b""

    def test_large_message(self):
        message = bytes(range(256)) * 64
        assert decrypt(ALICE, encrypt(ALICE_PUB, message)) == message

    def test_overhead_is_constant(self):
        for n in (0, 1, 100):
            assert len(encrypt(ALICE_PUB, bytes(n))) == n + OVERHEAD

    def test_encryptions_are_randomised(self):
        assert encrypt(ALICE_PUB, b"m") != encrypt(ALICE_PUB, b"m")

    def test_deterministic_with_fixed_ephemeral(self):
        ephemeral = generate_private_key(seed=b"fixed")
        a = encrypt(ALICE_PUB, b"m", _ephemeral_private=ephemeral)
        b = encrypt(ALICE_PUB, b"m", _ephemeral_private=ephemeral)
        # Nonce is still random, so full envelopes differ, but both decrypt.
        assert decrypt(ALICE, a) == decrypt(ALICE, b) == b"m"

    @given(st.binary(max_size=128))
    @settings(max_examples=10)
    def test_property_roundtrip(self, message):
        assert decrypt(ALICE, encrypt(ALICE_PUB, message)) == message


class TestRejections:
    def test_wrong_recipient_key(self):
        envelope = encrypt(ALICE_PUB, b"for alice only")
        with pytest.raises(DecryptionError):
            decrypt(BOB, envelope)

    def test_truncated_envelope(self):
        with pytest.raises(DecryptionError):
            decrypt(ALICE, b"x" * (OVERHEAD - 1))

    @pytest.mark.parametrize("offset", [0, 33, 45, -1])
    def test_tampered_bytes_rejected(self, offset):
        envelope = bytearray(encrypt(ALICE_PUB, b"integrity matters"))
        envelope[offset] ^= 0x01
        with pytest.raises(DecryptionError):
            decrypt(ALICE, bytes(envelope))

    def test_zero_ephemeral_point_rejected(self):
        envelope = bytearray(encrypt(ALICE_PUB, b"m"))
        envelope[:32] = bytes(32)  # low-order point
        with pytest.raises(DecryptionError):
            decrypt(ALICE, bytes(envelope))
