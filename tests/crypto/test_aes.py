"""Tests for repro.crypto.aes against FIPS-197 / NIST SP 800-38A."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import (
    AES,
    BLOCK_SIZE,
    cbc_decrypt,
    cbc_encrypt,
    ctr_decrypt,
    ctr_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")


class TestBlockCipherVectors:
    """FIPS-197 Appendix C known-answer tests."""

    def test_aes128_fips197(self):
        cipher = AES(bytes(range(16)))
        assert cipher.encrypt_block(FIPS_PLAINTEXT).hex() == (
            "69c4e0d86a7b0430d8cdb78070b4c55a"
        )

    def test_aes192_fips197(self):
        cipher = AES(bytes(range(24)))
        assert cipher.encrypt_block(FIPS_PLAINTEXT).hex() == (
            "dda97ca4864cdfe06eaf70a0ec0d7191"
        )

    def test_aes256_fips197(self):
        cipher = AES(bytes(range(32)))
        assert cipher.encrypt_block(FIPS_PLAINTEXT).hex() == (
            "8ea2b7ca516745bfeafc49904b496089"
        )

    @pytest.mark.parametrize("key_size", [16, 24, 32])
    def test_decrypt_inverts_encrypt(self, key_size):
        cipher = AES(bytes(range(key_size)))
        block = b"0123456789abcdef"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_sp800_38a_cbc_aes128_first_block(self):
        """NIST SP 800-38A F.2.1 (our CBC appends a padding block)."""
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        ciphertext = cbc_encrypt(key, iv, plaintext)
        assert ciphertext[:16].hex() == "7649abac8119b246cee98e9b12e9197d"

    def test_rounds_per_key_size(self):
        assert AES(bytes(16)).rounds == 10
        assert AES(bytes(24)).rounds == 12
        assert AES(bytes(32)).rounds == 14


class TestBlockCipherErrors:
    def test_bad_key_size(self):
        with pytest.raises(ValueError):
            AES(bytes(15))

    def test_bad_block_size_encrypt(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).encrypt_block(b"short")

    def test_bad_block_size_decrypt(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).decrypt_block(b"x" * 17)


class TestPkcs7:
    def test_pad_length_always_multiple(self):
        for n in range(0, 33):
            padded = pkcs7_pad(bytes(n))
            assert len(padded) % BLOCK_SIZE == 0
            assert len(padded) > n

    def test_full_block_input_gets_full_block_padding(self):
        padded = pkcs7_pad(bytes(16))
        assert len(padded) == 32
        assert padded[-1] == 16

    def test_unpad_rejects_bad_terminal_byte(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(bytes(15) + b"\x00")

    def test_unpad_rejects_inconsistent_padding(self):
        data = bytes(14) + b"\x01\x02"
        with pytest.raises(ValueError):
            pkcs7_unpad(data)

    def test_unpad_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"x" * 15)

    def test_unpad_rejects_empty(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"")

    def test_pad_block_size_bounds(self):
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", block_size=0)
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", block_size=256)

    @given(st.binary(max_size=100))
    def test_roundtrip(self, data):
        assert pkcs7_unpad(pkcs7_pad(data)) == data


class TestCtrMode:
    KEY = bytes(range(32))
    NONCE = b"12345678"

    def test_roundtrip(self):
        message = b"the quick brown fox jumps over the lazy dog"
        ct = ctr_encrypt(self.KEY, self.NONCE, message)
        assert ctr_decrypt(self.KEY, self.NONCE, ct) == message

    def test_empty_message(self):
        assert ctr_encrypt(self.KEY, self.NONCE, b"") == b""

    def test_ciphertext_length_equals_plaintext(self):
        for n in (1, 15, 16, 17, 100):
            assert len(ctr_encrypt(self.KEY, self.NONCE, bytes(n))) == n

    def test_different_nonces_differ(self):
        message = bytes(32)
        a = ctr_encrypt(self.KEY, b"AAAAAAAA", message)
        b = ctr_encrypt(self.KEY, b"BBBBBBBB", message)
        assert a != b

    def test_different_keys_differ(self):
        message = bytes(32)
        a = ctr_encrypt(bytes(32), self.NONCE, message)
        b = ctr_encrypt(bytes(31) + b"\x01", self.NONCE, message)
        assert a != b

    def test_nonce_must_be_8_bytes(self):
        with pytest.raises(ValueError):
            ctr_encrypt(self.KEY, b"short", b"data")

    def test_keystream_not_repeated_across_blocks(self):
        # Encrypting zeros exposes the keystream; consecutive blocks
        # must differ (counter actually increments).
        keystream = ctr_encrypt(self.KEY, self.NONCE, bytes(64))
        blocks = [keystream[i:i + 16] for i in range(0, 64, 16)]
        assert len(set(blocks)) == 4

    def test_accepts_prebuilt_cipher(self):
        cipher = AES(self.KEY)
        message = b"reuse the schedule"
        assert (ctr_encrypt(cipher, self.NONCE, message)
                == ctr_encrypt(self.KEY, self.NONCE, message))

    @given(st.binary(max_size=200))
    @settings(max_examples=25)
    def test_property_roundtrip(self, message):
        ct = ctr_encrypt(self.KEY, self.NONCE, message)
        assert ctr_decrypt(self.KEY, self.NONCE, ct) == message


class TestCbcMode:
    KEY = bytes(range(16))
    IV = bytes(16)

    def test_roundtrip(self):
        message = b"cbc roundtrip message"
        assert cbc_decrypt(self.KEY, self.IV, cbc_encrypt(self.KEY, self.IV, message)) == message

    def test_empty_message_roundtrip(self):
        assert cbc_decrypt(self.KEY, self.IV, cbc_encrypt(self.KEY, self.IV, b"")) == b""

    def test_iv_must_be_block_sized(self):
        with pytest.raises(ValueError):
            cbc_encrypt(self.KEY, b"short", b"data")
        with pytest.raises(ValueError):
            cbc_decrypt(self.KEY, b"short", bytes(16))

    def test_decrypt_rejects_partial_blocks(self):
        with pytest.raises(ValueError):
            cbc_decrypt(self.KEY, self.IV, b"x" * 20)

    def test_decrypt_rejects_empty(self):
        with pytest.raises(ValueError):
            cbc_decrypt(self.KEY, self.IV, b"")

    def test_tampered_ciphertext_breaks_padding_or_content(self):
        message = b"A" * 32
        ct = bytearray(cbc_encrypt(self.KEY, self.IV, message))
        ct[-1] ^= 0xFF  # corrupt final (padding) block
        try:
            result = cbc_decrypt(self.KEY, self.IV, bytes(ct))
        except ValueError:
            return
        assert result != message

    def test_identical_blocks_do_not_repeat(self):
        # CBC chains: two identical plaintext blocks yield different
        # ciphertext blocks (unlike ECB).
        ct = cbc_encrypt(self.KEY, self.IV, bytes(32))
        assert ct[:16] != ct[16:32]

    @given(st.binary(max_size=100))
    @settings(max_examples=25)
    def test_property_roundtrip(self, message):
        ct = cbc_encrypt(self.KEY, self.IV, message)
        assert cbc_decrypt(self.KEY, self.IV, ct) == message
