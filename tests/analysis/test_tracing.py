"""Tests for repro.analysis.tracing (the Fig. 8 machinery)."""

import pytest

from repro.analysis.tracing import CreditTracer
from repro.core.credit import CreditRegistry, MaliciousBehaviour

NODE = b"\x05" * 32


@pytest.fixture()
def registry():
    registry = CreditRegistry()
    for t in range(0, 24, 3):
        registry.record_transaction(NODE, bytes(32), float(t))
    registry.record_malicious(NODE, MaliciousBehaviour.DOUBLE_SPENDING, 24.0)
    return registry


class TestCreditTracer:
    def test_sample_records_breakdown(self, registry):
        tracer = CreditTracer(registry, NODE)
        point = tracer.sample(10.0)
        assert point.time == 10.0
        assert point.credit == pytest.approx(registry.credit(NODE, 10.0))
        assert tracer.points == [point]

    def test_sample_range_grid(self, registry):
        tracer = CreditTracer(registry, NODE)
        tracer.sample_range(0.0, 10.0, 2.0)
        assert [p.time for p in tracer.points] == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0]

    def test_sample_range_validates_step(self, registry):
        with pytest.raises(ValueError):
            CreditTracer(registry, NODE).sample_range(0.0, 1.0, 0.0)

    def test_series_accessors(self, registry):
        tracer = CreditTracer(registry, NODE)
        tracer.sample_range(0.0, 30.0, 10.0)
        credit = tracer.credit_series()
        positive = tracer.positive_series()
        negative = tracer.negative_series()
        assert len(credit) == len(positive) == len(negative) == 4
        assert all(n <= 0 for _, n in negative)
        assert all(p >= 0 for _, p in positive)

    def test_attack_shows_as_sharp_drop(self, registry):
        tracer = CreditTracer(registry, NODE)
        tracer.sample_range(0.0, 40.0, 0.5)
        minimum = tracer.minimum_credit()
        assert minimum < -5.0  # the Fig. 8(a) cliff
        before_attack = [p.credit for p in tracer.points if p.time < 24.0]
        assert all(c >= 0 for c in before_attack)

    def test_recovery_time(self, registry):
        tracer = CreditTracer(registry, NODE)
        tracer.sample_range(0.0, 120.0, 0.5)
        recovery = tracer.recovery_time(after=24.0, threshold=-0.5)
        assert recovery is not None
        assert 0.0 < recovery < 120.0

    def test_recovery_time_none_when_never(self, registry):
        tracer = CreditTracer(registry, NODE)
        tracer.sample_range(24.0, 26.0, 0.5)
        assert tracer.recovery_time(after=24.0, threshold=10.0) is None

    def test_minimum_credit_empty(self, registry):
        assert CreditTracer(registry, NODE).minimum_credit() is None

    def test_events_annotation(self, registry):
        tracer = CreditTracer(registry, NODE)
        tracer.mark_event(24.0, "double-spend", -1.0)
        assert tracer.events == [(24.0, "double-spend", -1.0)]
