"""Tests for repro.analysis.workloads (parallel-growth generator)."""

import pytest

from repro.analysis.workloads import confirmation_times, grow_parallel_tangle
from repro.tangle.tip_selection import WeightedRandomWalkSelector


class TestGrowParallelTangle:
    def test_produces_requested_transactions(self):
        growth = grow_parallel_tangle(device_count=3, tx_per_device=5,
                                      difficulty=4, seed=1)
        assert growth.transaction_count == 15
        assert len(growth.tangle) == 16  # + genesis

    def test_makespan_and_throughput(self):
        growth = grow_parallel_tangle(device_count=2, tx_per_device=4,
                                      difficulty=4, seed=2)
        assert growth.makespan > 0
        assert growth.throughput == pytest.approx(
            growth.transaction_count / growth.makespan)

    def test_deterministic_given_seed(self):
        a = grow_parallel_tangle(device_count=2, tx_per_device=4,
                                 difficulty=4, seed=3)
        b = grow_parallel_tangle(device_count=2, tx_per_device=4,
                                 difficulty=4, seed=3)
        assert set(a.attach_times) == set(b.attach_times)
        assert a.makespan == b.makespan

    def test_parallelism_beats_serial_makespan(self):
        serial = grow_parallel_tangle(device_count=1, tx_per_device=16,
                                      difficulty=6, seed=4)
        parallel = grow_parallel_tangle(device_count=4, tx_per_device=4,
                                        difficulty=6, seed=4)
        # Same total work split over 4 devices finishes much faster.
        assert parallel.makespan < serial.makespan / 2

    def test_custom_selector(self):
        growth = grow_parallel_tangle(
            device_count=2, tx_per_device=5, difficulty=4, seed=5,
            selector=WeightedRandomWalkSelector(alpha=0.5),
        )
        assert growth.transaction_count == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            grow_parallel_tangle(device_count=0, tx_per_device=1,
                                 difficulty=4, seed=1)
        with pytest.raises(ValueError):
            grow_parallel_tangle(device_count=1, tx_per_device=0,
                                 difficulty=4, seed=1)


class TestConfirmationTimes:
    def test_latencies_non_negative_and_present(self):
        growth = grow_parallel_tangle(device_count=4, tx_per_device=10,
                                      difficulty=4, seed=6)
        latencies = confirmation_times(growth, threshold=4)
        assert latencies
        assert all(latency >= 0 for latency in latencies)

    def test_higher_threshold_slower(self):
        growth = grow_parallel_tangle(device_count=4, tx_per_device=10,
                                      difficulty=4, seed=7)
        fast = confirmation_times(growth, threshold=3)
        slow = confirmation_times(growth, threshold=8)
        assert (sum(slow) / len(slow)) >= (sum(fast) / len(fast))

    def test_threshold_validated(self):
        growth = grow_parallel_tangle(device_count=1, tx_per_device=2,
                                      difficulty=4, seed=8)
        with pytest.raises(ValueError):
            confirmation_times(growth, threshold=1)

    def test_unburied_tail_skipped(self):
        growth = grow_parallel_tangle(device_count=1, tx_per_device=3,
                                      difficulty=4, seed=9)
        # Chain of 3: only the first reaches weight 3.
        assert len(confirmation_times(growth, threshold=3)) == 1
