"""Tests for repro.analysis.reporting (consolidated report)."""

import pytest

from repro.analysis.reporting import ShapeCheck, generate_report


class TestShapeCheck:
    def test_render_pass(self):
        check = ShapeCheck("Fig. 7", "grows", True)
        assert check.render() == "- [PASS] grows"

    def test_render_fail(self):
        check = ShapeCheck("Fig. 7", "grows", False)
        assert "[FAIL]" in check.render()


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report()

    def test_contains_every_figure_section(self, report):
        for heading in ("## Fig. 7", "## Fig. 8", "## Fig. 9", "## Fig. 10"):
            assert heading in report

    def test_all_shape_checks_pass(self, report):
        assert "[FAIL]" not in report
        assert "9/9 shape checks pass" in report

    def test_paper_values_present(self, report):
        assert "0.700" in report  # Fig. 9 original PoW paper value
        assert "0.118" in report  # Fig. 9 credit-normal paper value

    def test_is_markdown(self, report):
        assert report.startswith("# B-IoT reproduction report")


class TestReportCli:
    def test_report_command(self, capsys, tmp_path):
        from repro.cli import main
        output = tmp_path / "report.md"
        assert main(["report", "--output", str(output)]) == 0
        printed = capsys.readouterr().out
        assert "shape checks pass" in printed
        assert output.read_text().startswith("# B-IoT reproduction report")
