"""Tests for repro.analysis.visualize."""

import pytest

from repro.analysis.visualize import chain_to_dot, tangle_summary, tangle_to_dot
from repro.chain.block import Block
from repro.chain.blockchain import Blockchain
from repro.crypto.keys import KeyPair
from repro.tangle.snapshot import take_snapshot
from repro.tangle.tangle import Tangle
from repro.tangle.transaction import Transaction

KEYS = KeyPair.generate(seed=b"viz-tests")


@pytest.fixture()
def small_tangle():
    genesis = Transaction.create_genesis(KEYS)
    tangle = Tangle(genesis)
    previous = genesis
    for i in range(6):
        tx = Transaction.create(
            KEYS, kind="data", payload=f"v-{i}".encode(),
            timestamp=float(i + 1), branch=previous.tx_hash,
            trunk=previous.tx_hash, difficulty=1,
        )
        tangle.attach(tx, arrival_time=float(i + 1))
        previous = tx
    return tangle, previous


class TestTangleToDot:
    def test_valid_dot_structure(self, small_tangle):
        tangle, _ = small_tangle
        dot = tangle_to_dot(tangle)
        assert dot.startswith("digraph tangle {")
        assert dot.endswith("}")
        assert dot.count("->") == 6  # one dedup'd edge per child

    def test_tips_shaded_gray(self, small_tangle):
        tangle, tip = small_tangle
        dot = tangle_to_dot(tangle)
        tip_line = next(line for line in dot.splitlines()
                        if tip.tx_hash.hex()[:12] in line and "label" in line)
        assert "gray80" in tip_line

    def test_highlight_overrides(self, small_tangle):
        tangle, tip = small_tangle
        dot = tangle_to_dot(tangle, highlight={tip.tx_hash: "red"})
        assert 'fillcolor="red"' in dot

    def test_truncation(self, small_tangle):
        tangle, _ = small_tangle
        dot = tangle_to_dot(tangle, max_transactions=3)
        node_lines = [l for l in dot.splitlines()
                      if "label" in l and "pruned" not in l]
        assert len(node_lines) == 3

    def test_custom_label(self, small_tangle):
        tangle, _ = small_tangle
        dot = tangle_to_dot(tangle, label=lambda tx: "X")
        assert 'label="X"' in dot

    def test_entry_points_rendered(self, small_tangle):
        tangle, _ = small_tangle
        snapshot = take_snapshot(tangle, now=100.0, keep_recent_seconds=2.0,
                                 min_weight_to_prune=2)
        restored = snapshot.restore()
        dot = tangle_to_dot(restored)
        assert "pruned" in dot
        assert "octagon" in dot


class TestTangleSummary:
    def test_contains_key_metrics(self, small_tangle):
        tangle, _ = small_tangle
        summary = tangle_summary(tangle)
        assert "transactions" in summary
        assert "7" in summary  # genesis + 6
        assert "tips" in summary
        assert "kind: data" in summary
        assert "kind: genesis" in summary


class TestChainToDot:
    def test_main_chain_and_orphans_shaded(self):
        chain = Blockchain(Block.mine_genesis(KEYS))
        a = Block.mine(KEYS, prev_hash=chain.genesis.block_hash, height=1,
                       timestamp=1.0, difficulty=6)
        chain.add_block(a)
        orphan = Block.mine(KEYS, prev_hash=chain.genesis.block_hash,
                            height=1, timestamp=0.5, difficulty=2)
        chain.add_block(orphan)
        dot = chain_to_dot(chain)
        assert dot.startswith("digraph chain {")
        assert 'fillcolor="gray80"' in dot  # the orphan
        assert dot.count('fillcolor="white"') == 2  # genesis + main block
