"""Tests for repro.analysis.metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.metrics import (
    ThroughputMeter,
    format_series,
    format_table,
    summary_stats,
)


class TestThroughputMeter:
    def test_tps_basic(self):
        meter = ThroughputMeter()
        for t in (0.5, 1.0, 1.5, 9.0):
            meter.record(t)
        assert meter.tps(start=0.0, end=10.0) == pytest.approx(0.4)
        assert meter.count == 4

    def test_tps_window_bounds_inclusive(self):
        meter = ThroughputMeter()
        meter.record(1.0)
        meter.record(2.0)
        assert meter.tps(start=1.0, end=2.0) == pytest.approx(2.0)

    def test_tps_invalid_window(self):
        with pytest.raises(ValueError):
            ThroughputMeter().tps(start=2.0, end=1.0)

    def test_windowed_tps_series(self):
        meter = ThroughputMeter()
        for t in (0.5, 1.5, 2.5, 3.5):
            meter.record(t)
        series = meter.windowed_tps(start=0.0, end=4.0, window=2.0)
        assert len(series) == 2
        assert series[0] == (2.0, pytest.approx(1.0))
        assert series[1] == (4.0, pytest.approx(1.0))

    def test_windowed_tps_validates_window(self):
        with pytest.raises(ValueError):
            ThroughputMeter().windowed_tps(start=0.0, end=1.0, window=0.0)


class TestSummaryStats:
    def test_known_sample(self):
        stats = summary_stats([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)

    def test_odd_median(self):
        assert summary_stats([3.0, 1.0, 2.0]).median == 2.0

    def test_single_sample(self):
        stats = summary_stats([5.0])
        assert stats.std == 0.0
        assert stats.median == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summary_stats([])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                    max_size=50))
    def test_property_bounds(self, samples):
        stats = summary_stats(samples)
        # Allow float-summation slack: the mean of near-identical values
        # can land an ulp outside [min, max].
        slack = 1e-6 * max(1.0, abs(stats.minimum), abs(stats.maximum))
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum - slack <= stats.mean <= stats.maximum + slack
        assert stats.std >= 0


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            [("a", 1), ("long-name", 22)],
            headers=["name", "value"],
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_format_table_without_headers(self):
        text = format_table([("x", "y")])
        assert text == "x  y"

    def test_format_table_empty(self):
        assert format_table([]) == ""

    def test_format_series(self):
        text = format_series([(1.0, 0.5), (2.0, 0.25)],
                             x_label="difficulty", y_label="seconds")
        assert "difficulty" in text
        assert "0.25" in text
