"""Tests for repro.analysis.figures (the per-figure experiment drivers)."""

import pytest

from repro.analysis.figures import (
    PAPER_FIG7_ANCHORS,
    PAPER_FIG9_MEANS,
    PAPER_FIG10_ANCHORS,
    fig7_pow_running_time,
    fig8_credit_trace,
    fig9_pow_comparison,
    fig10_aes_timing,
)
from repro.devices.profiles import PC


class TestFig7:
    def test_covers_difficulties_1_to_14(self):
        points = fig7_pow_running_time(samples_per_level=2)
        assert [p.difficulty for p in points] == list(range(1, 15))

    def test_expected_times_monotone(self):
        points = fig7_pow_running_time(samples_per_level=1)
        expected = [p.expected_seconds for p in points]
        assert expected == sorted(expected)

    def test_paper_anchors_attached(self):
        points = fig7_pow_running_time(samples_per_level=1)
        by_difficulty = {p.difficulty: p for p in points}
        for difficulty, value in PAPER_FIG7_ANCHORS.items():
            assert by_difficulty[difficulty].paper_seconds == value

    def test_deterministic_given_seed(self):
        a = fig7_pow_running_time(samples_per_level=3, seed=5)
        b = fig7_pow_running_time(samples_per_level=3, seed=5)
        assert [p.sampled_seconds for p in a] == [p.sampled_seconds for p in b]

    def test_profile_override(self):
        points = fig7_pow_running_time(samples_per_level=1, profile=PC)
        # The PC is ~100x faster than the Pi at every difficulty.
        assert points[-1].expected_seconds < 1.0


class TestFig8:
    def test_no_attack_trace_is_clean(self):
        result = fig8_credit_trace(attack_times=())
        assert result.minimum_credit >= 0.0
        assert result.recovery_seconds is None
        assert len(result.transaction_times) > 20

    def test_attack_produces_cliff_and_gap(self):
        result = fig8_credit_trace(attack_times=(24.0,))
        assert result.minimum_credit < -10.0
        assert result.longest_transaction_gap > 10.0

    def test_credit_components_relation(self):
        result = fig8_credit_trace(attack_times=(24.0,))
        params_lambda2 = 0.5
        for point in result.tracer.points:
            assert point.credit == pytest.approx(
                point.positive + params_lambda2 * point.negative)

    def test_two_attacks_worse_than_one(self):
        one = fig8_credit_trace(attack_times=(24.0,))
        two = fig8_credit_trace(attack_times=(24.0, 60.0))
        assert two.minimum_credit <= one.minimum_credit
        assert len(two.transaction_times) <= len(one.transaction_times)


class TestFig9:
    @pytest.fixture(scope="class")
    def regimes(self):
        return {r.name: r for r in fig9_pow_comparison()}

    def test_all_four_regimes_present(self, regimes):
        assert set(regimes) == set(PAPER_FIG9_MEANS)

    def test_paper_ordering(self, regimes):
        assert (regimes["credit-normal"].mean_pow_seconds
                < regimes["original-pow"].mean_pow_seconds
                < regimes["credit-1-attack"].mean_pow_seconds
                < regimes["credit-2-attacks"].mean_pow_seconds)

    def test_within_2x_of_paper(self, regimes):
        for name, regime in regimes.items():
            ratio = regime.mean_pow_seconds / regime.paper_seconds
            assert 0.5 < ratio < 2.0, (name, ratio)

    def test_transactions_counted(self, regimes):
        assert all(r.transactions > 0 for r in regimes.values())


class TestFig10:
    def test_sweep_range(self):
        points = fig10_aes_timing(min_exponent=6, max_exponent=12)
        assert points[0].message_bytes == 64
        assert points[-1].message_bytes == 4096

    def test_measured_times_positive_and_growing(self):
        points = fig10_aes_timing(max_exponent=14)
        assert all(p.measured_seconds > 0 for p in points)
        assert points[-1].measured_seconds > points[0].measured_seconds

    def test_model_matches_anchor_by_construction(self):
        points = fig10_aes_timing(max_exponent=18)
        at_256k = next(p for p in points if p.message_bytes == 2 ** 18)
        assert at_256k.modelled_rpi_seconds == pytest.approx(
            PAPER_FIG10_ANCHORS[2 ** 18], rel=0.02)

    def test_paper_anchors_attached(self):
        points = fig10_aes_timing(max_exponent=20)
        with_paper = [p for p in points if p.paper_seconds is not None]
        assert len(with_paper) == len(PAPER_FIG10_ANCHORS)
