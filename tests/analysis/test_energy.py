"""Tests for repro.analysis.energy and the device energy model."""

import pytest

from repro.analysis.energy import (
    EnergyBreakdown,
    energy_for_stats,
    energy_per_transaction,
)
from repro.devices.profiles import PC, RASPBERRY_PI_3B
from repro.nodes.light_node import LightNodeStats


class TestProfileEnergyModel:
    def test_compute_energy_scales_with_time(self):
        one = RASPBERRY_PI_3B.compute_energy_joules(1.0)
        two = RASPBERRY_PI_3B.compute_energy_joules(2.0)
        assert one == pytest.approx(RASPBERRY_PI_3B.active_watts)
        assert two == pytest.approx(2 * one)

    def test_pow_energy_via_attempts(self):
        # 3000 attempts = 1 s of hashing + overhead on the Pi.
        joules = RASPBERRY_PI_3B.pow_energy_joules(3000)
        expected = RASPBERRY_PI_3B.active_watts * (1.0 + 0.05)
        assert joules == pytest.approx(expected)

    def test_radio_energy(self):
        assert RASPBERRY_PI_3B.radio_energy_joules(0) == 0.0
        assert RASPBERRY_PI_3B.radio_energy_joules(1_000_000) == pytest.approx(1.5)
        assert PC.radio_energy_joules(1000) == 0.0  # wired backbone

    def test_validation(self):
        with pytest.raises(ValueError):
            RASPBERRY_PI_3B.compute_energy_joules(-1.0)
        with pytest.raises(ValueError):
            RASPBERRY_PI_3B.radio_energy_joules(-1)


class TestEnergyForStats:
    def _stats(self):
        stats = LightNodeStats()
        stats.pow_seconds_total = 10.0
        stats.aes_seconds_total = 1.0
        stats.submissions_sent = 5
        stats.readings_taken = 5
        return stats

    def test_breakdown_components(self):
        breakdown = energy_for_stats(RASPBERRY_PI_3B, self._stats(),
                                     mean_payload_bytes=200.0)
        watts = RASPBERRY_PI_3B.active_watts
        assert breakdown.pow_joules == pytest.approx(10.0 * watts)
        assert breakdown.aes_joules == pytest.approx(1.0 * watts)
        assert breakdown.signature_joules == pytest.approx(
            5 * RASPBERRY_PI_3B.signature_seconds * watts)
        assert breakdown.radio_joules == pytest.approx(
            RASPBERRY_PI_3B.radio_energy_joules(1000))
        assert breakdown.total_joules == pytest.approx(
            breakdown.pow_joules + breakdown.aes_joules
            + breakdown.signature_joules + breakdown.radio_joules)

    def test_per_transaction(self):
        breakdown = EnergyBreakdown(pow_joules=10.0, aes_joules=0.0,
                                    signature_joules=0.0, radio_joules=0.0)
        assert breakdown.per_transaction(5) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            breakdown.per_transaction(0)

    def test_pow_dominates_for_typical_device(self):
        breakdown = energy_for_stats(RASPBERRY_PI_3B, self._stats())
        assert breakdown.pow_joules > 5 * breakdown.aes_joules
        assert breakdown.pow_joules > 100 * breakdown.radio_joules


class TestEnergyPerTransaction:
    def test_matches_manual_computation(self):
        joules = energy_per_transaction(RASPBERRY_PI_3B, 0.5,
                                        payload_bytes=1024, encrypts=True)
        watts = RASPBERRY_PI_3B.active_watts
        expected = (
            watts * (0.5 + RASPBERRY_PI_3B.signature_seconds)
            + watts * RASPBERRY_PI_3B.aes_seconds(1024)
            + RASPBERRY_PI_3B.radio_energy_joules(1024)
        )
        assert joules == pytest.approx(expected)

    def test_encryption_flag(self):
        plain = energy_per_transaction(RASPBERRY_PI_3B, 0.5, encrypts=False)
        encrypted = energy_per_transaction(RASPBERRY_PI_3B, 0.5, encrypts=True)
        assert encrypted > plain

    def test_negative_pow_rejected(self):
        with pytest.raises(ValueError):
            energy_per_transaction(RASPBERRY_PI_3B, -0.1)

    def test_credit_saving_story(self):
        """The Fig. 9 -> Ext-5 translation: 0.132 s vs 0.841 s mean PoW
        maps to ~6x energy saving per transaction."""
        original = energy_per_transaction(RASPBERRY_PI_3B, 0.841)
        credit = energy_per_transaction(RASPBERRY_PI_3B, 0.132)
        assert 4.0 < original / credit < 8.0
