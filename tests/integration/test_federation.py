"""Multi-manager federation: several factories, one public tangle.

Section IV-A: "In each smart factory, the existence of one or more
managers are permitted" and "Among factories, secure data sharing is
also supported."  This scenario hard-codes two factory managers into
one genesis; each runs its own full node, authorises its own devices,
and distributes its own group key — on a single shared ledger.
"""

import random

import pytest

from repro.core.acl import GenesisConfig
from repro.core.authority import DataProtector
from repro.core.consensus import CreditBasedConsensus, InverseDifficultyPolicy
from repro.crypto.keys import KeyPair
from repro.devices.sensors import PowerMeterSensor, TemperatureSensor
from repro.network.network import Network
from repro.network.simulator import EventScheduler
from repro.nodes.light_node import LightNode
from repro.nodes.manager import ManagerNode

MANAGER_A = KeyPair.generate(seed=b"federation-manager-a")
MANAGER_B = KeyPair.generate(seed=b"federation-manager-b")
INTRUDER = KeyPair.generate(seed=b"federation-intruder")


def consensus():
    return CreditBasedConsensus(
        policy=InverseDifficultyPolicy(initial_difficulty=6))


@pytest.fixture()
def federation():
    genesis = ManagerNode.create_genesis(
        MANAGER_A, network_name="federation",
        extra_managers=[MANAGER_B.public],
    )
    scheduler = EventScheduler()
    network = Network(scheduler, rng=random.Random(9))
    manager_a = ManagerNode("factory-a", MANAGER_A, genesis,
                            consensus=consensus(),
                            rng=random.Random(1))
    manager_b = ManagerNode("factory-b", MANAGER_B, genesis,
                            consensus=consensus(),
                            rng=random.Random(2))
    network.attach(manager_a)
    network.attach(manager_b)
    manager_a.add_peer("factory-b")
    manager_b.add_peer("factory-a")

    devices = {}
    for label, manager, sensor in (
        ("device-a", manager_a, TemperatureSensor(seed=1)),
        ("device-b", manager_b, PowerMeterSensor(seed=2)),
    ):
        keys = KeyPair.generate(seed=f"federation-{label}".encode())
        device = LightNode(
            label, keys, gateway=manager.address,
            manager=manager.keypair.public, sensor=sensor,
            report_interval=1.5, rng=random.Random(len(label)),
        )
        network.attach(device)
        devices[label] = device
    return scheduler, network, manager_a, manager_b, devices


class TestGenesisFederation:
    def test_both_managers_in_genesis(self, federation):
        _, _, manager_a, _, _ = federation
        config = GenesisConfig.from_genesis(manager_a.tangle.genesis)
        ids = {m.node_id for m in config.all_managers}
        assert ids == {MANAGER_A.node_id, MANAGER_B.node_id}

    def test_second_manager_constructs_from_same_genesis(self, federation):
        _, _, manager_a, manager_b, _ = federation
        assert manager_b.acl.is_manager(MANAGER_B.node_id)
        assert manager_a.acl.is_manager(MANAGER_B.node_id)

    def test_intruder_cannot_pose_as_manager(self, federation):
        _, _, manager_a, _, _ = federation
        with pytest.raises(ValueError, match="trust anchor"):
            ManagerNode("intruder", INTRUDER, manager_a.tangle.genesis,
                        consensus=consensus())


class TestFederatedOperation:
    def test_each_manager_authorises_its_own_devices(self, federation):
        scheduler, _, manager_a, manager_b, devices = federation
        manager_a.authorize_devices([devices["device-a"].keypair.public])
        manager_b.authorize_devices([devices["device-b"].keypair.public])
        scheduler.run_until(scheduler.clock.now() + 2.0)
        # Both updates replicated to both factories' full nodes.
        for node in (manager_a, manager_b):
            assert node.acl.is_authorized_device(
                devices["device-a"].keypair.node_id)
            assert node.acl.is_authorized_device(
                devices["device-b"].keypair.node_id)

    def test_devices_of_both_factories_share_the_ledger(self, federation):
        scheduler, _, manager_a, manager_b, devices = federation
        manager_a.authorize_devices([devices["device-a"].keypair.public])
        manager_b.authorize_devices([devices["device-b"].keypair.public])
        scheduler.run_until(scheduler.clock.now() + 2.0)
        manager_b.distribute_key(
            "device-b", devices["device-b"].keypair.public)
        scheduler.run_until(scheduler.clock.now() + 2.0)
        for device in devices.values():
            device.start()
        scheduler.run_until(scheduler.clock.now() + 30.0)
        for device in devices.values():
            assert device.stats.submissions_accepted > 0
        hashes_a = {tx.tx_hash for tx in manager_a.tangle}
        hashes_b = {tx.tx_hash for tx in manager_b.tangle}
        assert hashes_a == hashes_b

    def test_factory_b_data_unreadable_by_factory_a(self, federation):
        scheduler, _, manager_a, manager_b, devices = federation
        manager_a.authorize_devices([devices["device-a"].keypair.public])
        manager_b.authorize_devices([devices["device-b"].keypair.public])
        scheduler.run_until(scheduler.clock.now() + 2.0)
        manager_b.distribute_key(
            "device-b", devices["device-b"].keypair.public)
        scheduler.run_until(scheduler.clock.now() + 2.0)
        devices["device-b"].start()
        scheduler.run_until(scheduler.clock.now() + 20.0)
        encrypted = [tx.payload for tx in manager_a.tangle
                     if DataProtector.is_encrypted(tx.payload)]
        assert encrypted  # B's sensitive data replicated onto A's node
        a_side_reader = DataProtector()  # factory A holds no B keys
        for payload in encrypted:
            with pytest.raises(KeyError):
                a_side_reader.unprotect(payload)
        # Factory B's own authority reads them, from either replica.
        b_reader = DataProtector({
            "sensitive": manager_b.distributor.group_key()})
        assert all(
            b_reader.unprotect(p).sensitive for p in encrypted
        )
