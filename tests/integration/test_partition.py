"""Split-brain integration test: partition the backbone, let both
halves grow independently, heal, reconcile, verify convergence.

This is the strongest consistency scenario the substrate supports: the
DAG has no fork-choice to run (both halves' transactions are valid and
merge), the ledger arbitration is deterministic, and anti-entropy sync
must stitch the halves back together in both directions.
"""

import pytest

from repro.core.biot import BIoTConfig, BIoTSystem


@pytest.fixture()
def system():
    system = BIoTSystem.build(BIoTConfig(
        device_count=4, gateway_count=2, seed=131,
        initial_difficulty=6, report_interval=1.5,
    ))
    system.initialize()
    for device in system.devices:
        device.start()
    system.run_for(15.0)
    return system


def partition(system):
    """Cut gateway-0 off from the other full nodes (manager stays with
    gateway-1's side)."""
    system.network.cut_link("gateway-0", "gateway-1")
    system.network.cut_link("gateway-0", "manager")


def heal(system):
    system.network.heal_link("gateway-0", "gateway-1")
    system.network.heal_link("gateway-0", "manager")


class TestPartitionAndHeal:
    def test_both_halves_keep_serving(self, system):
        partition(system)
        before = {d.address: d.stats.submissions_accepted
                  for d in system.devices}
        system.run_for(20.0)
        # Devices on both sides of the cut keep getting service from
        # their own gateway (partition tolerance).
        for device in system.devices:
            assert device.stats.submissions_accepted > before[device.address]

    def test_halves_diverge_then_converge(self, system):
        g0, g1 = system.gateways
        partition(system)
        system.run_for(20.0)
        set0 = {tx.tx_hash for tx in g0.tangle}
        set1 = {tx.tx_hash for tx in g1.tangle}
        assert set0 - set1 and set1 - set0  # genuine divergence
        heal(system)
        # Bidirectional anti-entropy; two rounds to sweep up traffic
        # that lands during reconciliation.
        for _ in range(2):
            g0.request_sync(g1.address)
            g1.request_sync(g0.address)
            system.run_for(2.0)
        system.run_for(3.0)
        set0 = {tx.tx_hash for tx in g0.tangle}
        set1 = {tx.tx_hash for tx in g1.tangle}
        assert len(set0.symmetric_difference(set1)) <= 3  # in-flight slack
        assert len(g0.solidification) == 0
        assert len(g1.solidification) == 0

    def test_manager_side_state_propagates_after_heal(self, system):
        """An ACL revocation issued during the partition reaches the
        isolated gateway once healed and synced."""
        partition(system)
        victim = system.devices[0]  # homed on gateway-0 (isolated side)
        assert victim.gateway == "gateway-0"
        system.manager.deauthorize_devices([victim.keypair.public])
        system.run_for(10.0)
        g0 = system.gateways[0]
        # The isolated gateway still serves the victim (it cannot know).
        assert g0.acl.is_authorized_device(victim.keypair.node_id)
        heal(system)
        g0.request_sync("manager")
        system.run_for(3.0)
        assert not g0.acl.is_authorized_device(victim.keypair.node_id)

    def test_weights_agree_after_reconciliation(self, system):
        g0, g1 = system.gateways
        partition(system)
        system.run_for(15.0)
        heal(system)
        for _ in range(2):
            g0.request_sync(g1.address)
            g1.request_sync(g0.address)
            system.run_for(2.0)
        for device in system.devices:
            device.stop()
        system.run_for(8.0)  # drain in-flight traffic completely
        g0.request_sync(g1.address)
        g1.request_sync(g0.address)
        system.run_for(3.0)
        set0 = {tx.tx_hash for tx in g0.tangle}
        set1 = {tx.tx_hash for tx in g1.tangle}
        for tx_hash in set0 & set1:
            assert g0.tangle.weight(tx_hash) == g1.tangle.weight(tx_hash)
        assert set0 == set1
