"""Whole-deployment differential test: accel backend vs reference.

The accel lane (fixed-base tables, batch verification, worker pool) is
only admissible if a full simulated deployment produces *bit-identical*
results: same tangle content on every replica, same ledger balances,
same statistics.  Sensitive-sensor payload encryption draws AES IVs
from the process randomness source, so the runs are pinned with
``rand.deterministic`` — exactly how ``repro trace`` achieves
byte-stable artifacts.
"""

import pytest

from repro.core.biot import BIoTConfig, BIoTSystem
from repro.crypto import rand


def run_deployment(*, crypto_backend="reference", pow_workers=0,
                   gossip_batch_size=1, seconds=8.0):
    """Run a small deployment and return its state fingerprint."""
    with rand.deterministic(b"crypto-backends:bit-identity"):
        config = BIoTConfig(
            device_count=3,
            gateway_count=2,
            seed=11,
            initial_difficulty=8,
            tip_alpha=0.05,
            crypto_backend=crypto_backend,
            pow_workers=pow_workers,
            gossip_batch_size=gossip_batch_size,
        )
        system = BIoTSystem.build(config)
        try:
            system.initialize()
            system.start_devices()
            system.run_for(seconds)
            fingerprint = {
                node.address: (
                    sorted(tx.full_digest for tx in node.tangle),
                    sorted(node.ledger._balances.items()),
                )
                for node in system.full_nodes
            }
        finally:
            system.close()
    return fingerprint


@pytest.fixture(scope="module")
def reference_fingerprint():
    return run_deployment()


class TestBitIdentity:
    def test_reference_run_is_repeatable(self, reference_fingerprint):
        assert run_deployment() == reference_fingerprint

    def test_accel_matches_reference(self, reference_fingerprint):
        assert run_deployment(
            crypto_backend="accel") == reference_fingerprint

    def test_accel_with_pool_matches_reference(self, reference_fingerprint):
        assert run_deployment(
            crypto_backend="accel",
            pow_workers=2) == reference_fingerprint


class TestBatchedGossipDeployment:
    def test_replicas_converge_under_batched_flooding(self):
        # Flood batching legitimately reorders wire traffic (that is
        # the point), so the promise is weaker than bit-identity with
        # the unbatched run: after the devices stop and in-flight
        # gossip drains, every full node holds the same tangle.
        with rand.deterministic(b"crypto-backends:batched"):
            config = BIoTConfig(
                device_count=3,
                gateway_count=2,
                seed=11,
                initial_difficulty=8,
                tip_alpha=0.05,
                crypto_backend="accel",
                gossip_batch_size=4,
            )
            system = BIoTSystem.build(config)
            try:
                system.initialize()
                system.start_devices()
                system.run_for(8.0)
                for device in system.devices:
                    device.stop()
                system.run_for(5.0)
                tangles = [
                    sorted(tx.full_digest for tx in node.tangle)
                    for node in system.full_nodes
                ]
                assert len(tangles[0]) > 1  # traffic actually flowed
                for other in tangles[1:]:
                    assert other == tangles[0]
            finally:
                system.close()
