"""Cross-module integration tests: the whole paper's system at once.

These scenarios combine the credit mechanism, the ACL, the data
authority layer, the tangle replicas and the attack harnesses the way
the evaluation section uses them, and assert the end-to-end properties
the paper claims (Section VI-C security analysis).
"""

import random

import pytest

from repro.attacks.double_spend import DoubleSpendAttacker
from repro.attacks.lazy_tips import LazyLightNode
from repro.core.authority import DataProtector
from repro.core.biot import BIoTConfig, BIoTSystem
from repro.core.workflow import run_workflow
from repro.crypto.keys import KeyPair
from repro.devices.sensors import TemperatureSensor


@pytest.fixture(scope="module")
def busy_system():
    """A system that ran the full workflow plus 60 s of reporting."""
    system = BIoTSystem.build(BIoTConfig(
        device_count=5, gateway_count=3, seed=91,
        initial_difficulty=6, report_interval=2.0,
    ))
    report = run_workflow(system, report_seconds=60.0)
    assert report.ok, report.format()
    system.run_for(5.0)  # let gossip settle
    return system


class TestReplication:
    def test_all_replicas_identical(self, busy_system):
        full_nodes = [busy_system.manager] + busy_system.gateways
        hash_sets = [
            {tx.tx_hash for tx in node.tangle} for node in full_nodes
        ]
        assert all(h == hash_sets[0] for h in hash_sets[1:])

    def test_weights_agree_across_replicas(self, busy_system):
        a, b = busy_system.gateways[0], busy_system.gateways[1]
        for tx in a.tangle:
            assert a.tangle.weight(tx.tx_hash) == b.tangle.weight(tx.tx_hash)

    def test_acl_state_agrees(self, busy_system):
        full_nodes = [busy_system.manager] + busy_system.gateways
        device_lists = [n.acl.authorized_devices() for n in full_nodes]
        assert all(lst == device_lists[0] for lst in device_lists)

    def test_old_transactions_confirm(self, busy_system):
        gateway = busy_system.gateways[0]
        confirmed = gateway.confirmed_count(threshold=5)
        assert confirmed > 0


class TestDataConfidentiality:
    def test_unauthorized_reader_sees_only_ciphertext(self, busy_system):
        gateway = busy_system.gateways[0]
        encrypted = [tx.payload for tx in gateway.tangle
                     if DataProtector.is_encrypted(tx.payload)]
        assert encrypted
        outsider = DataProtector()
        for payload in encrypted:
            with pytest.raises(KeyError):
                outsider.unprotect(payload)

    def test_key_holder_reads_from_any_replica(self, busy_system):
        authority = DataProtector({
            "sensitive": busy_system.manager.distributor.group_key()
        })
        for gateway in busy_system.gateways:
            readings = [
                authority.unprotect(tx.payload) for tx in gateway.tangle
                if DataProtector.is_encrypted(tx.payload)
            ]
            assert readings
            assert all(r.sensitive for r in readings)

    def test_plaintext_readings_decode_for_anyone(self, busy_system):
        gateway = busy_system.gateways[0]
        anyone = DataProtector()
        plain = [
            anyone.unprotect(tx.payload) for tx in gateway.tangle
            if tx.kind == "data" and not DataProtector.is_encrypted(tx.payload)
        ]
        assert plain
        assert all(not r.sensitive for r in plain)


class TestCombinedAttack:
    """Lazy node + double spender active at once, honest traffic on top."""

    @pytest.fixture(scope="class")
    def battlefield(self):
        system = BIoTSystem.build(BIoTConfig(
            device_count=3, gateway_count=2, seed=92,
            initial_difficulty=6, report_interval=2.0,
        ))
        lazy_keys = KeyPair.generate(seed=b"e2e-lazy")
        lazy = LazyLightNode(
            "lazy", lazy_keys, gateway="gateway-0",
            manager=system.manager.acl.manager,
            sensor=TemperatureSensor(seed=7), report_interval=2.0,
            rng=random.Random(1),
            fixed_branch=system.manager.tangle.genesis.tx_hash,
        )
        system.network.attach(lazy)
        spender_keys = KeyPair.generate(seed=b"e2e-spender")
        spender = DoubleSpendAttacker(
            "spender", spender_keys,
            gateways=["gateway-0", "gateway-1"],
            recipients=[k.public for k in system.device_keys.values()][:2],
            attack_interval=10.0, rng=random.Random(2),
        )
        system.network.attach(spender)
        system.manager.authorize_devices(
            [k.public for k in system.device_keys.values()]
            + [lazy_keys.public, spender_keys.public]
        )
        for node in [system.manager] + system.gateways:
            node.ledger.credit(spender_keys.node_id, 50)
        for device in system.devices:
            if device.sensor.sensitive:
                system.manager.distribute_key(device.address,
                                              device.keypair.public)
        system.run_for(2.0)
        for device in system.devices:
            device.start()
        lazy.start()
        spender.start()
        system.run_for(120.0)
        return system, lazy, spender

    def test_both_attackers_punished(self, battlefield):
        system, lazy, spender = battlefield
        views = [system.manager] + system.gateways
        assert any(
            n.consensus.registry.malicious_count(lazy.keypair.node_id) > 0
            for n in views
        )
        assert any(
            n.consensus.registry.malicious_count(spender.keypair.node_id) > 0
            for n in views
        )

    def test_honest_devices_cheaper_than_lazy(self, battlefield):
        """Honest traffic flows and pays far less PoW per transaction
        than the punished lazy node.  (Accepted *counts* are similar at
        this report interval — the punished PoW still fits inside it —
        so the discriminating quantity is cost, as in Fig. 9.)"""
        system, lazy, spender = battlefield
        assert min(d.stats.submissions_accepted for d in system.devices) > 0
        honest_cost = max(d.stats.mean_pow_seconds for d in system.devices)
        half = len(lazy.stats.pow_times) // 2
        lazy_cost = (sum(lazy.stats.pow_times[half:])
                     / len(lazy.stats.pow_times[half:]))
        assert lazy_cost > 3 * honest_cost

    def test_ledger_consistency_under_attack(self, battlefield):
        system, _, spender = battlefield
        balances = {
            node.address: node.ledger.balance(spender.keypair.node_id)
            for node in [system.manager] + system.gateways
        }
        assert all(balance >= 0 for balance in balances.values())

    def test_honest_difficulty_stays_low(self, battlefield):
        system, lazy, _ = battlefield
        for device in system.devices:
            assert device.stats.assigned_difficulties[-1] <= 6
        assert max(lazy.stats.assigned_difficulties) > 6

    def test_replicas_converge_despite_conflicts(self, battlefield):
        """Regression: conflicting transfers must not strand descendants
        in solidification buffers or fork the replicas' DAGs."""
        system, _, _ = battlefield
        system.run_for(10.0)  # settle in-flight gossip
        full_nodes = [system.manager] + system.gateways
        hash_sets = [{tx.tx_hash for tx in n.tangle} for n in full_nodes]
        assert all(h == hash_sets[0] for h in hash_sets[1:])
        for node in full_nodes:
            assert len(node.solidification) == 0

    def test_conflict_winner_agrees_across_replicas(self, battlefield):
        system, _, spender = battlefield
        winners = [
            {seq: node.ledger.spent_tx(spender.keypair.node_id, seq)
             for seq in range(spender.stats.rounds_started)}
            for node in [system.manager] + system.gateways
        ]
        # Every replica that has resolved a sequence agrees on the winner.
        for seq in range(spender.stats.rounds_started):
            resolved = {w[seq] for w in winners if w[seq] is not None}
            assert len(resolved) <= 1
