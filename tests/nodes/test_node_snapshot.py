"""Tests for node snapshots and gateway bootstrap."""

import random

import pytest

from repro.core.biot import BIoTConfig, BIoTSystem
from repro.core.consensus import CreditBasedConsensus, InverseDifficultyPolicy
from repro.nodes.full_node import FullNode
from repro.nodes.snapshot import NodeSnapshot


def matching_consensus():
    """A consensus configured like the system's gateways (D0=6): the
    bootstrap contract is that the newcomer runs the same policy as its
    peers — difficulty agreement is a *configuration* property."""
    return CreditBasedConsensus(
        policy=InverseDifficultyPolicy(initial_difficulty=6))


@pytest.fixture(scope="module")
def aged_system():
    system = BIoTSystem.build(BIoTConfig(
        device_count=4, gateway_count=2, seed=111,
        initial_difficulty=6, report_interval=1.5,
    ))
    system.initialize()
    system.start_devices()
    system.run_for(90.0)
    return system


def snapshot_of(system, *, keep=20.0, prune_weight=5):
    return system.gateways[0].export_snapshot(
        now=system.scheduler.clock.now(),
        keep_recent_seconds=keep,
        min_weight_to_prune=prune_weight,
    )


class TestExportSnapshot:
    def test_prunes_most_history(self, aged_system):
        snapshot = snapshot_of(aged_system)
        assert snapshot.tangle.pruned_count > snapshot.tangle.retained_count

    def test_carries_derived_state(self, aged_system):
        snapshot = snapshot_of(aged_system)
        assert snapshot.acl_state["devices"]
        assert snapshot.ledger_state["balances"]
        assert snapshot.credit_state["nodes"]
        assert snapshot.created_at == aged_system.scheduler.clock.now()

    def test_json_roundtrip(self, aged_system):
        snapshot = snapshot_of(aged_system)
        restored = NodeSnapshot.from_json(snapshot.to_json())
        assert restored.acl_state == snapshot.acl_state
        assert restored.ledger_state == snapshot.ledger_state
        assert restored.created_at == snapshot.created_at
        assert restored.tangle.pruned_count == snapshot.tangle.pruned_count

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ValueError):
            NodeSnapshot.from_json("{}")


class TestBootstrap:
    def test_bootstrap_preserves_application_state(self, aged_system):
        snapshot = snapshot_of(aged_system)
        source = aged_system.gateways[0]
        newcomer = FullNode.bootstrap_from_snapshot(
            "nn-state", snapshot,
            consensus=matching_consensus(),
            rng=random.Random(1),
        )
        # ACL: same authorised devices.
        assert (newcomer.acl.authorized_devices()
                == source.acl.authorized_devices())
        # Ledger: same balances.
        for keys in aged_system.device_keys.values():
            assert (newcomer.ledger.balance(keys.node_id)
                    == source.ledger.balance(keys.node_id))
        # Credit: the newcomer assigns every device the same difficulty
        # its source would (the property gateways must agree on).
        now = snapshot.created_at
        for keys in aged_system.device_keys.values():
            assert (newcomer.consensus.required_difficulty(keys.node_id, now)
                    == source.consensus.required_difficulty(keys.node_id, now))

    def test_bootstrap_then_sync_converges(self, aged_system):
        snapshot = snapshot_of(aged_system)
        source = aged_system.gateways[0]
        newcomer = FullNode.bootstrap_from_snapshot(
            "nn-sync", snapshot,
            consensus=matching_consensus(),
            rng=random.Random(2),
        )
        aged_system.network.attach(newcomer)
        newcomer.add_peer(source.address)
        source.add_peer(newcomer.address)
        # Two sync rounds: the first closes the historical gap, the
        # second sweeps up transactions that arrived during round one
        # (devices keep submitting throughout).
        newcomer.request_sync(source.address)
        aged_system.run_for(2.0)
        newcomer.request_sync(source.address)
        aged_system.run_for(2.0)
        source_hashes = {tx.tx_hash for tx in source.tangle}
        newcomer_hashes = {tx.tx_hash for tx in newcomer.tangle}
        assert len(source_hashes - newcomer_hashes) <= 2  # in-flight slack
        assert newcomer.stats.sync_transactions_received > 0
        assert len(newcomer.solidification) == 0

    def test_bootstrapped_gateway_serves_devices(self, aged_system):
        snapshot = snapshot_of(aged_system)
        newcomer = FullNode.bootstrap_from_snapshot(
            "nn-serve", snapshot,
            consensus=matching_consensus(),
            rng=random.Random(3),
        )
        aged_system.network.attach(newcomer)
        for peer in [aged_system.manager] + aged_system.gateways:
            newcomer.add_peer(peer.address)
            peer.add_peer(newcomer.address)
        device = aged_system.devices[1]
        device.gateway = "nn-serve"
        before = device.stats.submissions_accepted
        aged_system.run_for(20.0)
        assert device.stats.submissions_accepted > before

    def test_credit_horizon_blocks_recounting(self, aged_system):
        """Re-ingesting pre-snapshot history must not re-record
        behaviour into the credit registry."""
        snapshot = snapshot_of(aged_system)
        source = aged_system.gateways[0]
        newcomer = FullNode.bootstrap_from_snapshot(
            "nn-horizon", snapshot,
            consensus=matching_consensus(),
            rng=random.Random(4),
        )
        device_id = list(aged_system.device_keys.values())[0].node_id
        count_before = newcomer.consensus.registry.transaction_count(device_id)
        # Feed it the full pre-snapshot history directly.
        for tx in source.tangle:
            if tx.is_genesis or tx.tx_hash in newcomer.tangle:
                continue
            newcomer._ingest(tx, source=None, admit=False)
        count_after = newcomer.consensus.registry.transaction_count(device_id)
        # Only post-horizon transactions may add records.
        new_records = count_after - count_before
        post_horizon = sum(
            1 for tx in source.tangle
            if tx.issuer.node_id == device_id
            and tx.timestamp > snapshot.created_at
        )
        assert new_records <= post_horizon + 1
