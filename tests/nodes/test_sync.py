"""Tests for full-node anti-entropy sync (gossip-gap healing)."""

import pytest

from repro.core.biot import BIoTConfig, BIoTSystem


def running_system():
    system = BIoTSystem.build(BIoTConfig(
        device_count=4, gateway_count=2, seed=101,
        initial_difficulty=6, report_interval=2.0,
    ))
    system.initialize()
    for device in system.devices:
        device.start()
    return system


class TestAntiEntropySync:
    def test_recovered_gateway_catches_up(self):
        system = running_system()
        system.run_for(15.0)
        system.network.take_down("gateway-0")
        system.run_for(20.0)  # traffic continues via gateway-1 + manager
        system.network.bring_up("gateway-0")
        crashed = system.gateways[0]
        survivor = system.gateways[1]
        missing_before = (len(survivor.tangle) - len(crashed.tangle))
        assert missing_before > 0  # gossip gaps are real
        crashed.request_sync(survivor.address)
        system.run_for(3.0)
        # Everything the survivor had is now replicated (the survivor
        # may have accepted a little new traffic during the sync RTT).
        crashed_hashes = {tx.tx_hash for tx in crashed.tangle}
        survivor_at_sync = {tx.tx_hash for tx in survivor.tangle}
        assert len(survivor_at_sync - crashed_hashes) <= 2
        assert crashed.stats.sync_transactions_received > 0
        assert survivor.stats.sync_requests_served == 1

    def test_sync_with_nothing_missing_is_noop(self):
        system = running_system()
        system.run_for(15.0)
        system.run_for(2.0)  # settle gossip
        a, b = system.gateways
        before = len(a.tangle)
        a.request_sync(b.address)
        system.run_for(2.0)
        assert b.stats.sync_requests_served == 1
        assert b.stats.sync_transactions_sent <= 2
        assert len(a.tangle) >= before

    def test_sync_is_bidirectionally_consistent(self):
        system = running_system()
        system.run_for(10.0)
        system.network.take_down("gateway-0")
        system.run_for(10.0)
        system.network.bring_up("gateway-0")
        a, b = system.gateways
        a.request_sync(b.address)
        system.run_for(2.0)
        b.request_sync(a.address)
        system.run_for(5.0)
        assert ({tx.tx_hash for tx in a.tangle}
                == {tx.tx_hash for tx in b.tangle})

    def test_synced_transactions_pass_validation(self):
        """Synced transactions go through the normal ingest path: the
        state they imply (ledger, ACL, credit) is applied too."""
        system = running_system()
        system.run_for(10.0)
        system.network.take_down("gateway-0")
        # Revoke one device while gateway-0 is down.
        victim = system.devices[0]
        system.manager.deauthorize_devices([victim.keypair.public])
        system.run_for(10.0)
        system.network.bring_up("gateway-0")
        crashed = system.gateways[0]
        crashed.request_sync("manager")
        system.run_for(3.0)
        # The ACL update arrived via sync and is in force.
        assert not crashed.acl.is_authorized_device(victim.keypair.node_id)

    def test_corrupt_sync_entries_ignored(self):
        system = running_system()
        system.run_for(5.0)
        crashed = system.gateways[0]
        before = len(crashed.tangle)
        system.network.send("gateway-1", "gateway-0", "sync_response",
                            {"transactions": [b"garbage", b""]})
        system.run_for(1.0)
        assert len(crashed.tangle) == before
