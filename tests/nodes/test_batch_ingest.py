"""Tests for the batch ingestion lane (gossip_batch, batch preverify,
coalesced flooding) and the PreverifiedSet.

The batch lane must be *behaviourally invisible*: a burst ingested via
``gossip_batch``/``sync_response`` attaches exactly the transactions
that one-at-a-time gossip would, rejects exactly the same corrupt
items, and with ``gossip_batch_size=1`` (the default) puts the exact
same messages on the wire as the pre-batching code.
"""

import random

import pytest

from repro.crypto.keys import KeyPair
from repro.network.network import Network, NetworkNode
from repro.network.simulator import EventScheduler
from repro.nodes.full_node import FullNode
from repro.nodes.manager import ManagerNode
from repro.tangle.transaction import Transaction
from repro.tangle.validation import PreverifiedSet
from repro.telemetry.registry import MetricsRegistry

MANAGER = KeyPair.generate(seed=b"batch-manager")
ISSUER = KeyPair.generate(seed=b"batch-issuer")

GENESIS = ManagerNode.create_genesis(MANAGER)


def chained_txs(count, *, keys=ISSUER, start=1.0):
    """*count* pre-signed difficulty-1 transactions in a parent chain."""
    txs = []
    prev, prev2 = GENESIS.tx_hash, GENESIS.tx_hash
    for i in range(count):
        tx = Transaction.create(
            keys, kind="data", payload=b"batch-%d" % i,
            timestamp=start + i, branch=prev2, trunk=prev, difficulty=1,
        )
        prev2, prev = prev, tx.tx_hash
        txs.append(tx)
    return txs


def make_mesh(count=2, **node_kwargs):
    scheduler = EventScheduler()
    network = Network(scheduler, rng=random.Random(7))
    nodes = []
    for i in range(count):
        node = FullNode(f"bn-{i}", GENESIS, rng=random.Random(50 + i),
                        **node_kwargs)
        network.attach(node)
        nodes.append(node)
    for a in nodes:
        for b in nodes:
            if a is not b:
                a.add_peer(b.address)
    return scheduler, network, nodes


class WireTap(NetworkNode):
    """A peer that records every message kind it is sent."""

    def __init__(self, address="tap"):
        super().__init__(address)
        self.messages = []

    def handle_message(self, message):
        self.messages.append(message)


class TestPreverifiedSet:
    def test_consume_pops(self):
        parked = PreverifiedSet()
        parked.add(b"a")
        assert b"a" in parked
        assert parked.consume(b"a")
        assert b"a" not in parked
        assert not parked.consume(b"a")

    def test_eviction_is_fifo_and_bounded(self):
        parked = PreverifiedSet(max_size=3)
        for digest in (b"a", b"b", b"c", b"d"):
            parked.add(digest)
        assert len(parked) == 3
        assert b"a" not in parked  # oldest evicted
        assert all(d in parked for d in (b"b", b"c", b"d"))

    def test_duplicate_add_is_idempotent(self):
        parked = PreverifiedSet(max_size=2)
        parked.add(b"a")
        parked.add(b"a")
        parked.add(b"b")
        assert len(parked) == 2
        assert b"a" in parked and b"b" in parked


class TestGossipBatchMessage:
    def test_batch_attaches_everywhere(self):
        scheduler, network, nodes = make_mesh(3)
        txs = chained_txs(5)
        encoded = [tx.to_bytes() for tx in txs]
        network.send("bn-0", "bn-0", "gossip_batch",
                     {"transactions": encoded})
        scheduler.run()
        for node in nodes:
            assert len(node.tangle) == len(txs) + 1
            for tx in txs:
                assert tx.tx_hash in node.tangle

    def test_corrupt_entry_does_not_poison_batch(self):
        scheduler, network, nodes = make_mesh(2)
        txs = chained_txs(4)
        encoded = [tx.to_bytes() for tx in txs]
        encoded.insert(2, b"\x00garbage")
        network.send("bn-0", "bn-0", "gossip_batch",
                     {"transactions": encoded})
        scheduler.run()
        for node in nodes:
            assert len(node.tangle) == len(txs) + 1

    def test_bad_signature_rejected_batch_equals_sequential(self):
        txs = chained_txs(4)
        bad = txs[1]
        forged = Transaction(
            kind=bad.kind, payload=bad.payload, timestamp=bad.timestamp,
            branch=bad.branch, trunk=bad.trunk, difficulty=bad.difficulty,
            nonce=bad.nonce, issuer=bad.issuer, signature=bytes(64),
        )
        encoded = [tx.to_bytes() for tx in txs]
        encoded[1] = forged.to_bytes()

        # Sequential baseline: one gossip_transaction at a time.
        scheduler, network, (seq_node,) = make_mesh(1)
        for data in encoded:
            network.send("bn-0", "bn-0", "gossip_transaction",
                         {"transaction": data})
            scheduler.run()

        scheduler, network, (batch_node,) = make_mesh(1)
        network.send("bn-0", "bn-0", "gossip_batch",
                     {"transactions": encoded})
        scheduler.run()

        assert ({tx.tx_hash for tx in batch_node.tangle}
                == {tx.tx_hash for tx in seq_node.tangle})
        assert forged.tx_hash not in batch_node.tangle
        # The forged tx's honest original never arrived, so its chain
        # descendants are parked, not attached — same in both worlds.
        assert (batch_node.stats.gossip_parked
                == seq_node.stats.gossip_parked)

    def test_preverified_set_is_consumed_by_attach(self):
        scheduler, network, (node,) = make_mesh(1)
        txs = chained_txs(3)
        network.send("bn-0", "bn-0", "gossip_batch",
                     {"transactions": [tx.to_bytes() for tx in txs]})
        scheduler.run()
        assert len(node.tangle) == len(txs) + 1
        assert len(node._preverified) == 0  # consumed, not leaked

    def test_accel_backend_matches_reference(self):
        txs = chained_txs(6)
        encoded = [tx.to_bytes() for tx in txs]
        tangles = {}
        for backend in ("reference", "accel"):
            scheduler, network, (node,) = make_mesh(
                1, crypto_backend=backend)
            network.send("bn-0", "bn-0", "gossip_batch",
                         {"transactions": encoded})
            scheduler.run()
            tangles[backend] = sorted(
                tx.full_digest for tx in node.tangle)
        assert tangles["reference"] == tangles["accel"]

    def test_sync_response_uses_batch_lane(self):
        # Two nodes that are NOT gossip peers: the burst only reaches
        # the target through explicit sync reconciliation.
        scheduler = EventScheduler()
        network = Network(scheduler, rng=random.Random(7))
        source = FullNode("bn-0", GENESIS, rng=random.Random(50))
        target = FullNode("bn-1", GENESIS, rng=random.Random(51),
                          telemetry=MetricsRegistry())
        network.attach(source)
        network.attach(target)
        for tx in chained_txs(4):
            source._ingest(tx, source=None, admit=False)
        target.request_sync(source.address)
        scheduler.run()
        assert len(target.tangle) == len(source.tangle)
        assert target.stats.sync_transactions_received == 4
        snapshot = target.telemetry.snapshot()
        assert snapshot["repro_crypto_batch_rounds_total"]["series"]


class TestBatchTelemetry:
    def test_counters_reflect_verdicts(self):
        telemetry = MetricsRegistry()
        scheduler, network, (node,) = make_mesh(1, telemetry=telemetry)
        txs = chained_txs(3)
        bad = txs[2]
        forged = Transaction(
            kind=bad.kind, payload=bad.payload, timestamp=bad.timestamp,
            branch=bad.branch, trunk=bad.trunk, difficulty=bad.difficulty,
            nonce=bad.nonce, issuer=bad.issuer, signature=bytes(64),
        )
        encoded = [txs[0].to_bytes(), txs[1].to_bytes(), forged.to_bytes()]
        node._ingest_batch(encoded, source=None)
        snapshot = telemetry.snapshot()
        assert snapshot["repro_crypto_batch_rounds_total"]["series"]["_"] == 1
        assert snapshot["repro_crypto_batch_verified_total"]["series"]["_"] == 2
        assert snapshot["repro_crypto_batch_fallback_total"]["series"]["_"] == 1
        assert snapshot["repro_crypto_batch_size"]["count"] == 1
        assert snapshot["repro_crypto_batch_size"]["sum"] == 3

    def test_single_item_skips_batch_round(self):
        telemetry = MetricsRegistry()
        scheduler, network, (node,) = make_mesh(1, telemetry=telemetry)
        (tx,) = chained_txs(1)
        node._ingest_batch([tx.to_bytes()], source=None)
        assert tx.tx_hash in node.tangle
        snapshot = telemetry.snapshot()
        assert not snapshot["repro_crypto_batch_rounds_total"]["series"]


class TestFloodBatching:
    def _tap_node(self, **node_kwargs):
        scheduler = EventScheduler()
        network = Network(scheduler, rng=random.Random(7))
        node = FullNode("bn-0", GENESIS, rng=random.Random(50),
                        **node_kwargs)
        tap = WireTap()
        network.attach(node)
        network.attach(tap)
        node.add_peer(tap.address)
        return scheduler, network, node, tap

    def test_default_size_sends_individual_gossip(self):
        scheduler, network, node, tap = self._tap_node()
        txs = chained_txs(4)
        node._ingest_batch([tx.to_bytes() for tx in txs], source=None)
        scheduler.run()
        kinds = [m.kind for m in tap.messages]
        assert kinds == ["gossip_transaction"] * len(txs)

    def test_batched_flood_coalesces_and_chunks(self):
        scheduler, network, node, tap = self._tap_node(gossip_batch_size=3)
        txs = chained_txs(7)
        node._ingest_batch([tx.to_bytes() for tx in txs], source=None)
        scheduler.run()
        kinds = [m.kind for m in tap.messages]
        # 7 floods chunked at 3: two batches of 3 and a lone single,
        # which goes out in the plain per-transaction format.
        assert kinds == ["gossip_batch", "gossip_batch",
                         "gossip_transaction"]
        relayed = []
        for message in tap.messages:
            if message.kind == "gossip_batch":
                relayed.extend(message.body["transactions"])
            else:
                relayed.append(message.body["transaction"])
        assert relayed == [tx.to_bytes() for tx in txs]

    def test_batched_flood_propagates_fully(self):
        scheduler, network, nodes = make_mesh(3, gossip_batch_size=4)
        txs = chained_txs(6)
        network.send("bn-0", "bn-0", "gossip_batch",
                     {"transactions": [tx.to_bytes() for tx in txs]})
        scheduler.run()
        for node in nodes:
            assert len(node.tangle) == len(txs) + 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FullNode("bn-x", GENESIS, gossip_batch_size=0)
        with pytest.raises(ValueError):
            FullNode("bn-x", GENESIS, crypto_backend="turbo")
