"""Tests for light-node reading batches and the batch payload framing."""

import pytest

from repro.core.authority import DataProtector, ManagerKeyDistributor
from repro.core.biot import BIoTConfig, BIoTSystem
from repro.crypto.keys import KeyPair
from repro.devices.sensors import (
    PowerMeterSensor,
    ReadingBatch,
    TemperatureSensor,
)

MANAGER = KeyPair.generate(seed=b"batch-manager")


class TestReadingBatch:
    def test_roundtrip(self):
        sensor = TemperatureSensor(seed=1)
        batch = ReadingBatch(tuple(sensor.read(float(t)) for t in range(4)))
        assert ReadingBatch.from_bytes(batch.to_bytes()) == batch
        assert len(batch) == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReadingBatch(())

    def test_sensitive_if_any_member_sensitive(self):
        plain = TemperatureSensor(seed=1).read(0.0)
        secret = PowerMeterSensor(seed=1).read(0.0)
        assert not ReadingBatch((plain,)).sensitive
        assert ReadingBatch((plain, secret)).sensitive

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            ReadingBatch.from_bytes(b"nope")


class TestBatchProtection:
    def _keyed_protectors(self):
        key = ManagerKeyDistributor(MANAGER).group_key()
        return (DataProtector({"sensitive": key}),
                DataProtector({"sensitive": key}))

    def test_plain_batch_readable_by_anyone(self):
        protector, _ = self._keyed_protectors()
        batch = ReadingBatch(tuple(
            TemperatureSensor(seed=2).read(float(t)) for t in range(3)))
        payload = protector.protect_batch(batch)
        assert DataProtector.is_batch(payload)
        assert not DataProtector.is_encrypted(payload)
        assert DataProtector().unprotect_batch(payload) == batch

    def test_sensitive_batch_encrypted(self):
        protector, reader = self._keyed_protectors()
        batch = ReadingBatch(tuple(
            PowerMeterSensor(seed=2).read(float(t)) for t in range(3)))
        payload = protector.protect_batch(batch)
        assert DataProtector.is_batch(payload)
        assert DataProtector.is_encrypted(payload)
        assert reader.unprotect_batch(payload) == batch
        with pytest.raises(KeyError):
            DataProtector().unprotect_batch(payload)

    def test_sensitive_batch_without_key_refused(self):
        batch = ReadingBatch((PowerMeterSensor(seed=2).read(0.0),))
        with pytest.raises(KeyError):
            DataProtector().protect_batch(batch)

    def test_single_reading_payload_not_a_batch(self):
        protector, _ = self._keyed_protectors()
        payload = protector.protect(TemperatureSensor(seed=1).read(0.0))
        assert not DataProtector.is_batch(payload)
        with pytest.raises(ValueError):
            DataProtector().unprotect_batch(payload)


class TestBatchingDevice:
    def _system(self, batch_size):
        system = BIoTSystem.build(BIoTConfig(
            device_count=2, gateway_count=1, seed=121,
            initial_difficulty=6, report_interval=1.0,
        ))
        for device in system.devices:
            device.batch_size = batch_size
        system.initialize()
        return system

    def test_batched_device_posts_fewer_transactions(self):
        unbatched = self._system(1)
        unbatched.start_devices()
        unbatched.run_for(40.0)
        batched = self._system(4)
        batched.start_devices()
        batched.run_for(40.0)
        device_u = unbatched.devices[0]
        device_b = batched.devices[0]
        # Similar reading counts, far fewer transactions.
        assert device_b.stats.readings_taken >= device_u.stats.readings_taken * 0.5
        assert (device_b.stats.submissions_sent
                < device_u.stats.submissions_sent / 2)

    def test_batched_payloads_decode_on_ledger(self):
        system = self._system(3)
        system.start_devices()
        system.run_for(30.0)
        gateway = system.gateways[0]
        authority = DataProtector({
            "sensitive": system.manager.distributor.group_key()})
        batches = 0
        readings = 0
        for tx in gateway.tangle:
            if tx.kind == "data" and DataProtector.is_batch(tx.payload):
                batch = authority.unprotect_batch(tx.payload)
                batches += 1
                readings += len(batch)
        assert batches > 0
        assert readings == batches * 3

    def test_batch_size_validated(self):
        keys = KeyPair.generate(seed=b"bs")
        from repro.nodes.light_node import LightNode
        with pytest.raises(ValueError):
            LightNode("d", keys, gateway="g", manager=keys.public,
                      sensor=TemperatureSensor(), batch_size=0)
