"""Tests for repro.nodes.full_node (gateway behaviour)."""

import random

import pytest

from repro.core.acl import GenesisConfig
from repro.core.consensus import CreditBasedConsensus
from repro.crypto.keys import KeyPair
from repro.network.network import Network, NetworkNode
from repro.network.simulator import EventScheduler
from repro.nodes.full_node import FullNode
from repro.nodes.manager import ManagerNode
from repro.tangle.transaction import Transaction, TransactionKind

MANAGER = KeyPair.generate(seed=b"fullnode-manager")
DEVICE = KeyPair.generate(seed=b"fullnode-device")
ROGUE = KeyPair.generate(seed=b"fullnode-rogue")


class Probe(NetworkNode):
    """A scripted client standing in for a light node."""

    def __init__(self, address="probe"):
        super().__init__(address)
        self.responses = []

    def handle_message(self, message):
        self.responses.append(message)


def make_setup(*, peers=2):
    scheduler = EventScheduler()
    network = Network(scheduler, rng=random.Random(4))
    genesis = ManagerNode.create_genesis(MANAGER)
    nodes = []
    for i in range(peers):
        node = FullNode(f"fn-{i}", genesis,
                        consensus=CreditBasedConsensus(),
                        rng=random.Random(100 + i))
        network.attach(node)
        nodes.append(node)
    for a in nodes:
        for b in nodes:
            if a is not b:
                a.add_peer(b.address)
    probe = Probe()
    network.attach(probe)
    # Authorise the test device via a manager-signed ACL transaction.
    from repro.core.acl import AuthorizationList
    update = AuthorizationList.make_update([DEVICE.public])
    acl_tx = Transaction.create(
        MANAGER, kind=TransactionKind.ACL, payload=update.to_bytes(),
        timestamp=0.0, branch=genesis.tx_hash, trunk=genesis.tx_hash,
        difficulty=11,  # the credit-required difficulty for a fresh node
    )
    nodes[0].ingest_local(acl_tx)
    scheduler.run()
    return scheduler, network, nodes, probe, genesis


def device_tx(parents, *, difficulty=11, timestamp=1.0, payload=b"reading"):
    return Transaction.create(
        DEVICE, kind=TransactionKind.DATA, payload=payload,
        timestamp=timestamp, branch=parents[0], trunk=parents[1],
        difficulty=difficulty,
    )


class TestTipsRpc:
    def test_authorized_device_gets_tips(self):
        scheduler, _, nodes, probe, _ = make_setup()
        probe.send("fn-0", "get_tips_request",
                   {"request_id": 1, "node_id": DEVICE.node_id})
        scheduler.run()
        (response,) = probe.responses
        assert response.kind == "get_tips_response"
        assert response.body["ok"]
        assert response.body["difficulty"] >= 1
        assert response.body["branch"] in nodes[0].tangle
        assert nodes[0].stats.tips_served == 1

    def test_unauthorized_refused(self):
        scheduler, _, nodes, probe, _ = make_setup()
        probe.send("fn-0", "get_tips_request",
                   {"request_id": 2, "node_id": ROGUE.node_id})
        scheduler.run()
        (response,) = probe.responses
        assert not response.body["ok"]
        assert response.body["error"] == "unauthorized"
        assert nodes[0].stats.unauthorized_rejected == 1


class TestSubmission:
    def test_accepted_and_gossiped(self):
        scheduler, _, nodes, probe, genesis = make_setup()
        tx = device_tx((genesis.tx_hash, genesis.tx_hash))
        probe.send("fn-0", "submit_transaction",
                   {"request_id": 3, "transaction": tx.to_bytes()})
        scheduler.run()
        (response,) = probe.responses
        assert response.body["ok"]
        assert tx.tx_hash in nodes[0].tangle
        assert tx.tx_hash in nodes[1].tangle  # replicated via gossip
        assert nodes[0].stats.submissions_accepted == 1

    def test_duplicate_submission_rejected(self):
        scheduler, _, nodes, probe, genesis = make_setup()
        tx = device_tx((genesis.tx_hash, genesis.tx_hash))
        for request_id in (1, 2):
            probe.send("fn-0", "submit_transaction",
                       {"request_id": request_id, "transaction": tx.to_bytes()})
        scheduler.run()
        oks = [r.body["ok"] for r in probe.responses]
        assert sorted(oks) == [False, True]
        assert len(nodes[0].tangle) == len(nodes[1].tangle)

    def test_unauthorized_issuer_rejected(self):
        scheduler, _, nodes, probe, genesis = make_setup()
        tx = Transaction.create(
            ROGUE, kind=TransactionKind.DATA, payload=b"x", timestamp=1.0,
            branch=genesis.tx_hash, trunk=genesis.tx_hash, difficulty=11,
        )
        probe.send("fn-0", "submit_transaction",
                   {"request_id": 4, "transaction": tx.to_bytes()})
        scheduler.run()
        (response,) = probe.responses
        assert not response.body["ok"]
        assert tx.tx_hash not in nodes[0].tangle
        assert "UnauthorizedIssuerError" in nodes[0].stats.rejection_reasons

    def test_undercut_difficulty_rejected(self):
        scheduler, _, nodes, probe, genesis = make_setup()
        tx = device_tx((genesis.tx_hash, genesis.tx_hash), difficulty=2)
        probe.send("fn-0", "submit_transaction",
                   {"request_id": 5, "transaction": tx.to_bytes()})
        scheduler.run()
        (response,) = probe.responses
        assert not response.body["ok"]
        assert "InvalidPowError" in nodes[0].stats.rejection_reasons
        # Admission failures never attach — nothing to gossip.
        assert tx.tx_hash not in nodes[0].tangle
        assert tx.tx_hash not in nodes[1].tangle

    def test_gossip_skips_admission_policy(self):
        """Policy is an admission rule at the service boundary; peer
        traffic replicates regardless, or knowledge races would fork
        the replicas (see FullNode._check_admission)."""
        scheduler, _, nodes, probe, genesis = make_setup()
        cheap = device_tx((genesis.tx_hash, genesis.tx_hash), difficulty=2)
        probe.send("fn-0", "gossip_transaction",
                   {"transaction": cheap.to_bytes()})
        scheduler.run()
        assert cheap.tx_hash in nodes[0].tangle
        assert cheap.tx_hash in nodes[1].tangle  # relayed onward too

    def test_solidified_submission_keeps_admission_semantics(self):
        """A submission parked on a missing parent is re-admitted when
        it solidifies; peer traffic stays exempt."""
        scheduler, _, nodes, probe, genesis = make_setup()
        parent = device_tx((genesis.tx_hash, genesis.tx_hash))
        # Cheap child SUBMITTED (admission applies) before its parent.
        cheap_child = device_tx((parent.tx_hash, parent.tx_hash),
                                timestamp=2.0, difficulty=2,
                                payload=b"cheap-child")
        probe.send("fn-0", "submit_transaction",
                   {"request_id": 9, "transaction": cheap_child.to_bytes()})
        scheduler.run()
        probe.send("fn-0", "gossip_transaction",
                   {"transaction": parent.to_bytes()})
        scheduler.run()
        # Parent attached via gossip; the parked child was re-ingested
        # with admission ON and was rejected for undercut difficulty.
        assert parent.tx_hash in nodes[0].tangle
        assert cheap_child.tx_hash not in nodes[0].tangle
        assert "InvalidPowError" in nodes[0].stats.rejection_reasons


class TestSolidification:
    def test_out_of_order_gossip_parks_then_attaches(self):
        scheduler, _, nodes, probe, genesis = make_setup()
        parent = device_tx((genesis.tx_hash, genesis.tx_hash))
        child = device_tx((parent.tx_hash, parent.tx_hash), timestamp=2.0,
                          payload=b"child")
        # Deliver the child first, directly via gossip.
        probe.send("fn-0", "gossip_transaction",
                   {"transaction": child.to_bytes()})
        scheduler.run()
        assert child.tx_hash not in nodes[0].tangle
        assert len(nodes[0].solidification) == 1
        probe.send("fn-0", "gossip_transaction",
                   {"transaction": parent.to_bytes()})
        scheduler.run()
        assert parent.tx_hash in nodes[0].tangle
        assert child.tx_hash in nodes[0].tangle
        assert len(nodes[0].solidification) == 0

    def test_parked_counted(self):
        scheduler, _, nodes, probe, genesis = make_setup()
        parent = device_tx((genesis.tx_hash, genesis.tx_hash))
        child = device_tx((parent.tx_hash, parent.tx_hash), timestamp=2.0)
        probe.send("fn-0", "gossip_transaction",
                   {"transaction": child.to_bytes()})
        scheduler.run()
        assert nodes[0].stats.gossip_parked == 1


class TestBookkeeping:
    def test_confirmed_count(self):
        scheduler, _, nodes, probe, genesis = make_setup()
        tx = device_tx((genesis.tx_hash, genesis.tx_hash))
        probe.send("fn-0", "submit_transaction",
                   {"request_id": 1, "transaction": tx.to_bytes()})
        scheduler.run()
        assert nodes[0].confirmed_count(2) == 1  # genesis has weight 2 now

    def test_unknown_message_kind_ignored(self):
        scheduler, _, nodes, probe, _ = make_setup()
        probe.send("fn-0", "weird-kind", {"x": 1})
        scheduler.run()
        assert probe.responses == []
