"""Tests for repro.nodes.light_node (device behaviour)."""

import random

import pytest

from repro.core.biot import BIoTConfig, BIoTSystem
from repro.crypto.keys import KeyPair
from repro.devices.sensors import PowerMeterSensor, TemperatureSensor
from repro.network.network import Network
from repro.network.simulator import EventScheduler
from repro.nodes.light_node import LightNode


def build_system(**overrides):
    config = dict(device_count=2, gateway_count=1, seed=31,
                  initial_difficulty=6, report_interval=2.0)
    config.update(overrides)
    return BIoTSystem.build(BIoTConfig(**config))


class TestConstruction:
    def test_report_interval_validated(self):
        keys = KeyPair.generate(seed=b"ln")
        with pytest.raises(ValueError):
            LightNode("d", keys, gateway="g", manager=keys.public,
                      sensor=TemperatureSensor(), report_interval=0.0)

    def test_engine_bound_on_attach(self):
        keys = KeyPair.generate(seed=b"ln")
        node = LightNode("d", keys, gateway="g", manager=keys.public,
                         sensor=TemperatureSensor())
        assert node.engine is None
        network = Network(EventScheduler(), rng=random.Random(1))
        network.attach(node)
        assert node.engine is not None
        assert not node.engine.advance_clock

    def test_start_requires_network(self):
        keys = KeyPair.generate(seed=b"ln")
        node = LightNode("d", keys, gateway="g", manager=keys.public,
                         sensor=TemperatureSensor())
        with pytest.raises(RuntimeError):
            node.start()


class TestReportingLoop:
    def test_device_submits_repeatedly(self):
        system = build_system()
        system.initialize()
        device = system.devices[0]
        device.start()
        system.run_for(20.0)
        assert device.stats.readings_taken >= 5
        assert device.stats.submissions_accepted >= 5
        # At the cutoff one PoW may still be in flight (solved but not
        # yet submitted), so the counters may differ by one.
        assert 0 <= device.stats.pow_solves - device.stats.submissions_sent <= 1

    def test_unauthorized_device_keeps_retrying_not_crashing(self):
        system = build_system()
        # Skip initialize(): nobody is authorised.
        device = system.devices[0]
        device.start()
        system.run_for(10.0)
        assert device.stats.tips_refused > 0
        assert device.stats.submissions_accepted == 0

    def test_sensitive_device_skips_until_key_arrives(self):
        system = build_system(device_count=2)
        # Authorise but do NOT distribute keys.
        system.manager.authorize_devices(
            [k.public for k in system.device_keys.values()]
        )
        system.run_for(2.0)
        sensitive = next(d for d in system.devices if d.sensor.sensitive)
        sensitive.start()
        system.run_for(10.0)
        # Readings are taken but never posted in the clear.
        assert sensitive.stats.readings_taken > 0
        assert sensitive.stats.submissions_sent == 0

    def test_stop_halts_submissions(self):
        system = build_system()
        system.initialize()
        device = system.devices[0]
        device.start()
        system.run_for(10.0)
        sent_before = device.stats.submissions_sent
        device.stop()
        system.run_for(10.0)
        assert device.stats.submissions_sent <= sent_before + 1

    def test_latency_recorded(self):
        system = build_system()
        system.initialize()
        device = system.devices[0]
        device.start()
        system.run_for(15.0)
        assert device.stats.submit_latencies
        assert all(lat > 0 for lat in device.stats.submit_latencies)

    def test_gateway_crash_does_not_wedge_device(self):
        system = build_system()
        system.initialize()
        device = system.devices[0]
        device.start()
        system.run_for(6.0)
        system.network.take_down(device.gateway)
        system.run_for(10.0)
        accepted_down = device.stats.submissions_accepted
        system.network.bring_up(device.gateway)
        system.run_for(10.0)
        assert device.stats.submissions_accepted > accepted_down


class TestCreditFeedback:
    def test_difficulty_drops_with_activity(self):
        system = build_system(report_interval=1.0)
        system.initialize()
        device = system.devices[0]
        device.start()
        system.run_for(30.0)
        difficulties = device.stats.assigned_difficulties
        assert difficulties[0] == 6
        assert min(difficulties) < 6
        # Monotone non-increasing while continuously active.
        assert difficulties[-1] <= difficulties[0]

    def test_mean_pow_reflects_difficulty_drop(self):
        system = build_system(report_interval=1.0)
        system.initialize()
        device = system.devices[0]
        device.start()
        system.run_for(40.0)
        times = device.stats.pow_times
        first_quarter = sum(times[:3]) / 3
        last_quarter = sum(times[-3:]) / 3
        assert last_quarter < first_quarter
