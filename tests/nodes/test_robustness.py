"""Fuzz/robustness tests: malformed network input must never take a
node down or wedge its loops."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.biot import BIoTConfig, BIoTSystem


def build_running_system(seed=141):
    system = BIoTSystem.build(BIoTConfig(
        device_count=2, gateway_count=1, seed=seed,
        initial_difficulty=6, report_interval=1.5,
    ))
    system.initialize()
    for device in system.devices:
        device.start()
    return system


GARBAGE_BODIES = [
    {},                                     # missing every field
    {"transaction": b"\x00\x01garbage"},    # undecodable transaction
    {"transaction": 12345},                 # wrong type entirely
    {"request_id": None, "node_id": "not-bytes"},
    {"known": "not-a-list"},
    {"transactions": [None, 7, b"junk"]},
    {"m1": b"", "session_id": b""},
    {"m2": None, "session_id": None},
    {"m3": object()},
    {"branch": b"x", "trunk": b"y", "difficulty": "eleven",
     "ok": True, "request_id": 1},
]

ALL_KINDS = [
    "get_tips_request", "get_tips_response", "submit_transaction",
    "submit_response", "gossip_transaction", "sync_request",
    "sync_response", "keydist_m1", "keydist_m2", "keydist_m3",
    "totally-unknown-kind",
]


class TestGatewayFuzzing:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_gateway_survives_garbage_of_every_kind(self, kind):
        system = build_running_system()
        for body in GARBAGE_BODIES:
            system.network.send("device-0", "gateway-0", kind, body)
        system.run_for(5.0)  # nothing raised out of the scheduler
        gateway = system.gateways[0]
        assert gateway.tangle_size >= 1

    def test_service_continues_under_garbage_stream(self):
        system = build_running_system()
        rng = random.Random(5)

        # Interleave garbage with real traffic for a while.
        def spray():
            kind = rng.choice(ALL_KINDS)
            body = rng.choice(GARBAGE_BODIES)
            system.network.send("device-1", "gateway-0", kind, body)
            system.scheduler.schedule(0.5, spray)

        system.scheduler.schedule(0.0, spray)
        system.run_for(30.0)
        for device in system.devices:
            assert device.stats.submissions_accepted > 0
        assert system.gateways[0].stats.malformed_messages > 0

    def test_manager_survives_keydist_garbage(self):
        system = build_running_system()
        for body in GARBAGE_BODIES:
            system.network.send("device-0", "manager", "keydist_m2", body)
        system.run_for(2.0)
        # The manager can still run a real handshake afterwards.
        device = system.devices[0]
        system.manager.distribute_key(device.address, device.keypair.public)
        system.run_for(2.0)
        assert system.manager.distributor.completed_distributions >= 0


class TestDeviceFuzzing:
    def test_device_survives_forged_responses(self):
        system = build_running_system()
        device = system.devices[0]
        for body in GARBAGE_BODIES:
            for kind in ("get_tips_response", "submit_response",
                         "keydist_m1", "keydist_m3"):
                system.network.send("gateway-0", device.address, kind, body)
        before = device.stats.submissions_accepted
        system.run_for(15.0)
        # The reporting loop is still alive.
        assert device.stats.submissions_accepted > before

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=10, deadline=None)
    def test_device_survives_random_binary_blobs(self, blob):
        system = build_running_system(seed=151)
        device = system.devices[0]
        system.network.send("gateway-0", device.address,
                            "get_tips_response",
                            {"request_id": 1, "ok": True, "branch": blob,
                             "trunk": blob, "difficulty": 3})
        system.run_for(3.0)
        assert True  # reaching here means nothing exploded
