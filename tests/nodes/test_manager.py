"""Tests for repro.nodes.manager."""

import pytest

from repro.core.biot import BIoTConfig, BIoTSystem
from repro.crypto.keys import KeyPair
from repro.nodes.manager import ManagerNode
from repro.tangle.transaction import TransactionKind


def build_system(**overrides):
    config = dict(device_count=3, gateway_count=2, seed=41,
                  initial_difficulty=6, report_interval=2.0)
    config.update(overrides)
    return BIoTSystem.build(BIoTConfig(**config))


class TestGenesisCreation:
    def test_genesis_embeds_manager(self):
        keys = KeyPair.generate(seed=b"mgr-genesis")
        genesis = ManagerNode.create_genesis(keys, network_name="plant")
        from repro.core.acl import GenesisConfig
        config = GenesisConfig.from_genesis(genesis)
        assert config.manager == keys.public
        assert config.network_name == "plant"

    def test_wrong_keypair_rejected(self):
        keys = KeyPair.generate(seed=b"mgr-a")
        other = KeyPair.generate(seed=b"mgr-b")
        genesis = ManagerNode.create_genesis(keys)
        with pytest.raises(ValueError, match="trust anchor"):
            ManagerNode("m", other, genesis)


class TestDeviceManagement:
    def test_authorize_devices_propagates(self):
        system = build_system()
        tx = system.manager.authorize_devices(
            [k.public for k in system.device_keys.values()]
        )
        assert tx.kind == TransactionKind.ACL
        system.run_for(2.0)
        for gateway in system.gateways:
            for keys in system.device_keys.values():
                assert gateway.acl.is_authorized_device(keys.node_id)

    def test_deauthorize_revokes_service(self):
        system = build_system()
        system.initialize()
        device = system.devices[0]
        device.start()
        system.run_for(10.0)
        accepted_before = device.stats.submissions_accepted
        assert accepted_before > 0
        system.manager.deauthorize_devices([device.keypair.public])
        system.run_for(3.0)  # let the revocation gossip
        refused_before = device.stats.tips_refused
        system.run_for(15.0)
        assert device.stats.tips_refused > refused_before
        assert device.stats.submissions_accepted <= accepted_before + 2

    def test_register_gateways(self):
        system = build_system()
        system.manager.register_gateways(
            [k.public for k in system.gateway_keys.values()]
        )
        system.run_for(2.0)
        for gateway in system.gateways:
            for keys in system.gateway_keys.values():
                assert gateway.acl.is_registered_gateway(keys.node_id)

    def test_manager_transactions_follow_tangle_rules(self):
        system = build_system()
        tx = system.manager.authorize_devices(
            [list(system.device_keys.values())[0].public]
        )
        assert tx.verify_pow()
        assert tx.verify_signature()
        assert tx.branch in system.manager.tangle
        assert tx.trunk in system.manager.tangle


class TestKeyDistribution:
    def test_distributes_over_network(self):
        system = build_system()
        system.manager.authorize_devices(
            [k.public for k in system.device_keys.values()]
        )
        system.run_for(1.0)
        sensitive = [d for d in system.devices if d.sensor.sensitive]
        for device in sensitive:
            system.manager.distribute_key(device.address, device.keypair.public)
        system.run_for(2.0)
        for device in sensitive:
            assert device.protector.has_key()
        assert system.manager.key_distribution_complete(len(sensitive))

    def test_m2_from_wrong_sender_ignored(self):
        system = build_system()
        device = system.devices[0]
        # Crash the device so the genuine M1 is never answered; only the
        # forged M2 reaches the manager.
        system.network.take_down(device.address)
        system.manager.distribute_key(device.address, device.keypair.public)
        session_id = next(iter(system.manager._keydist_sessions))
        system.network.send("gateway-0", "manager", "keydist_m2",
                            {"session_id": session_id, "m2": b"junk"})
        system.run_for(1.0)
        assert system.manager.distributor.completed_distributions == 0
