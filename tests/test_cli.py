"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_workflow_defaults(self):
        args = build_parser().parse_args(["workflow"])
        assert args.devices == 4
        assert args.gateways == 2

    def test_fig8_attack_times(self):
        args = build_parser().parse_args(["fig8", "--attacks", "24", "60"])
        assert args.attacks == [24.0, 60.0]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_fig7(self, capsys):
        assert main(["fig7", "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "difficulty" in out
        assert "paper" in out

    def test_fig8(self, capsys):
        assert main(["fig8", "--attacks", "24", "--duration", "60"]) == 0
        out = capsys.readouterr().out
        assert "CrN" in out
        assert "minimum credit" in out

    def test_fig9(self, capsys):
        assert main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "original-pow" in out
        assert "credit-2-attacks" in out

    def test_fig10(self, capsys):
        assert main(["fig10", "--max-exponent", "10"]) == 0
        out = capsys.readouterr().out
        assert "1024" in out

    def test_workflow(self, capsys):
        code = main([
            "workflow", "--devices", "2", "--gateways", "1",
            "--seconds", "20", "--difficulty", "6", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "step 5" in out
        assert "FAILED" not in out

    def test_summary(self, capsys):
        assert main([
            "summary", "--devices", "2", "--gateways", "1",
            "--seconds", "15", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "submissions_accepted" in out
